package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTraceStoreNilSafe(t *testing.T) {
	var s *TraceStore
	s.SetHeadRate(1)
	s.SetSlowThreshold(time.Second)
	if s.Keep(NewTraceID(), true, TraceError, time.Hour) {
		t.Error("nil store kept a record")
	}
	if s.Record(TraceRecord{ID: NewTraceID()}) {
		t.Error("nil store recorded")
	}
	if s.RecordForced(TraceRecord{ID: NewTraceID()}, true) {
		t.Error("nil store recorded forced")
	}
	if s.Entries() != nil || s.Find(NewTraceID()) != nil || s.Len() != 0 {
		t.Error("nil store returned entries")
	}
	_ = s.Stats()
	_ = s.HeadRate()
	_ = s.SlowThreshold()
}

// TestTraceStoreRetention pins the tail-sampling policy: forced beats
// everything, non-ok statuses are always kept, slow requests are always
// kept, and fast successes fall through to the head-sampling rate.
func TestTraceStoreRetention(t *testing.T) {
	s := NewTraceStore(128)
	s.SetHeadRate(0) // isolate the tail policy
	rec := func(status string, lat time.Duration) TraceRecord {
		return TraceRecord{ID: NewTraceID(), Time: time.Now(), Kind: "topk", Status: status, Latency: lat}
	}

	if s.Record(rec(TraceOK, time.Millisecond)) {
		t.Error("fast OK record kept with head sampling off")
	}
	for _, status := range []string{TraceError, TraceShed, TraceDeadline, TraceCanceled} {
		if !s.Record(rec(status, time.Millisecond)) {
			t.Errorf("fast %s record dropped, want tail-kept", status)
		}
	}
	if !s.Record(rec(TraceOK, DefaultTraceSlow+time.Millisecond)) {
		t.Error("slow OK record dropped, want slow-kept")
	}
	if !s.RecordForced(rec(TraceOK, time.Millisecond), true) {
		t.Error("forced fast OK record dropped")
	}

	s.SetSlowThreshold(time.Minute)
	if s.Record(rec(TraceOK, time.Second)) {
		t.Error("sub-threshold record kept after raising the slow threshold")
	}

	s.SetHeadRate(1)
	if !s.Record(rec(TraceOK, time.Nanosecond)) {
		t.Error("head rate 1.0 dropped a record")
	}

	st := s.Stats()
	if st.KeptTail != 4 || st.KeptSlow != 1 || st.KeptForced != 1 || st.KeptHead != 1 {
		t.Errorf("stats %+v, want tail=4 slow=1 forced=1 head=1", st)
	}
	if st.Kept != st.KeptTail+st.KeptSlow+st.KeptForced+st.KeptHead {
		t.Errorf("Kept %d is not the sum of its reasons: %+v", st.Kept, st)
	}
	if st.Offered != 9 {
		t.Errorf("Offered = %d, want 9", st.Offered)
	}
	if got := s.Len(); uint64(got) != st.Kept || got != st.Resident {
		t.Errorf("Len %d, Kept %d, Resident %d must agree below capacity", got, st.Kept, st.Resident)
	}
}

func TestTraceStoreEviction(t *testing.T) {
	s := NewTraceStore(4)
	s.SetHeadRate(1)
	ids := make([]TraceID, 10)
	for i := range ids {
		ids[i] = NewTraceID()
		s.Record(TraceRecord{ID: ids[i], Time: time.Now(), Status: TraceOK})
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", s.Len())
	}
	st := s.Stats()
	if st.Evicted != 6 || st.Resident != 4 {
		t.Fatalf("stats %+v, want evicted=6 resident=4", st)
	}
	// Newest-first: the survivors are the last four, ids[9] first.
	entries := s.Entries()
	if len(entries) != 4 || entries[0].ID != ids[9] || entries[3].ID != ids[6] {
		t.Fatalf("Entries() = %v, want ids 9..6 newest-first", entries)
	}
	if got := s.Find(ids[0]); got != nil {
		t.Fatalf("evicted id still found: %v", got)
	}
}

// TestTraceStoreFindMultiRecord pins the span-collector model: the request
// envelope and the engine's query record share one trace id and Find
// returns both, oldest first.
func TestTraceStoreFindMultiRecord(t *testing.T) {
	s := NewTraceStore(16)
	id := NewTraceID()
	s.RecordForced(TraceRecord{ID: id, Kind: "query", Status: TraceOK}, true)
	s.RecordForced(TraceRecord{ID: id, Kind: "topk", Status: TraceOK}, true)
	s.RecordForced(TraceRecord{ID: NewTraceID(), Kind: "query", Status: TraceOK}, true)
	got := s.Find(id)
	if len(got) != 2 || got[0].Kind != "query" || got[1].Kind != "topk" {
		t.Fatalf("Find(%s) = %+v, want [query topk] oldest-first", id, got)
	}
}

// TestTraceStoreRace hammers the store from concurrent writers and readers;
// run under -race this is the locking regression test.
func TestTraceStoreRace(t *testing.T) {
	s := NewTraceStore(32)
	s.SetHeadRate(0.5)
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	shared := NewTraceID()
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				st := TraceOK
				if i%3 == 0 {
					st = TraceError
				}
				s.Record(TraceRecord{ID: NewTraceID(), Time: time.Now(), Status: st, Latency: time.Duration(i)})
				s.RecordForced(TraceRecord{ID: shared, Time: time.Now(), Status: TraceOK}, true)
				if i%10 == 0 {
					s.SetHeadRate(float64(i%5) / 5)
					s.SetSlowThreshold(time.Duration(i) * time.Millisecond)
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = s.Entries()
				_ = s.Find(shared)
				_ = s.Stats()
				_ = s.Len()
			}
		}()
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	st := s.Stats()
	if st.Offered != 4*500*2 {
		t.Fatalf("Offered = %d, want %d", st.Offered, 4*500*2)
	}
	if st.Kept != st.KeptForced+st.KeptTail+st.KeptSlow+st.KeptHead {
		t.Fatalf("Kept %d is not the sum of its reasons: %+v", st.Kept, st)
	}
	if uint64(st.Resident) != st.Kept-st.Evicted {
		t.Fatalf("Resident %d != Kept %d - Evicted %d", st.Resident, st.Kept, st.Evicted)
	}
	if s.Len() != 32 {
		t.Fatalf("Len = %d, want full capacity 32", s.Len())
	}
}
