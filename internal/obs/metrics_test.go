package obs

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("Value after Reset = %d, want 0", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("Value = %d, want %d", got, workers*each)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// Bucket upper bounds are inclusive (Prometheus le semantics): the
	// observation of exactly 1 lands in the le="1" bucket.
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Errorf("Count = %d, want 5", s.Count)
	}
	if math.Abs(s.Sum-106) > 1e-9 {
		t.Errorf("Sum = %v, want 106", s.Sum)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 50; i++ {
		h.Observe(0.5) // le="1"
	}
	for i := 0; i < 45; i++ {
		h.Observe(1.5) // le="2"
	}
	for i := 0; i < 5; i++ {
		h.Observe(3.5) // le="4"
	}
	s := h.Snapshot()
	// p50: rank 50 exhausts the first bucket exactly -> its upper bound.
	if math.Abs(s.P50-1.0) > 1e-9 {
		t.Errorf("P50 = %v, want 1.0", s.P50)
	}
	// p95: rank 95 exhausts the second bucket -> 2.0.
	if math.Abs(s.P95-2.0) > 1e-9 {
		t.Errorf("P95 = %v, want 2.0", s.P95)
	}
	// p99: rank 99 is 4/5 through the (2, 4] bucket -> 2 + 0.8*2 = 3.6.
	if math.Abs(s.P99-3.6) > 1e-9 {
		t.Errorf("P99 = %v, want 3.6", s.P99)
	}
	if mean := s.Mean(); math.Abs(mean-(50*0.5+45*1.5+5*3.5)/100) > 1e-9 {
		t.Errorf("Mean = %v", mean)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(nil)
	s := h.Snapshot()
	if s.Count != 0 || s.Sum != 0 || s.P50 != 0 || s.P99 != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(nil)
	const workers, each = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("Count = %d, want %d", s.Count, workers*each)
	}
	// The CAS loop must not lose updates: the float sum is exact here since
	// 0.001*40000 stays well within float64 precision for this accumulation.
	if math.Abs(s.Sum-float64(workers*each)*0.001) > 1e-6 {
		t.Fatalf("Sum = %v, want %v", s.Sum, float64(workers*each)*0.001)
	}
}

func TestLatencyBuckets(t *testing.T) {
	b := LatencyBuckets()
	if len(b) != 27 {
		t.Fatalf("len = %d, want 27", len(b))
	}
	if b[0] != 1e-6 {
		t.Fatalf("first bound = %v, want 1e-6", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, b[i], b[i-1])
		}
	}
}

// TestWritePrometheus checks the exposition end to end: HELP/TYPE once per
// family, label rendering, cumulative histogram buckets with a trailing
// +Inf equal to _count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_requests_total", "Requests.", Label{Key: "kind", Value: "a"})
	b := r.Counter("test_requests_total", "Requests.", Label{Key: "kind", Value: "b"})
	r.GaugeFunc("test_temperature", "Temp.", func() float64 { return 1.5 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{1, 2})
	a.Add(3)
	b.Add(7)
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if n := strings.Count(out, "# TYPE test_requests_total counter"); n != 1 {
		t.Errorf("TYPE header for test_requests_total appears %d times, want 1\n%s", n, out)
	}
	for _, want := range []string{
		`test_requests_total{kind="a"} 3`,
		`test_requests_total{kind="b"} 7`,
		`test_temperature 1.5`,
		`test_latency_seconds_bucket{le="1"} 1`,
		`test_latency_seconds_bucket{le="2"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		`test_latency_seconds_count 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}

	// Every non-comment line must parse as `series value`.
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("snap_total", "c.")
	c.Add(2)
	r.CounterFunc("snap_func_total", "cf.", func() uint64 { return 9 })
	g := r.Gauge("snap_gauge", "g.")
	g.Set(-4)
	h := r.Histogram("snap_hist", "h.", []float64{1})
	h.Observe(0.5)

	s := r.Snapshot()
	if got := s["snap_total"]; got != uint64(2) {
		t.Errorf("snap_total = %v", got)
	}
	if got := s["snap_func_total"]; got != uint64(9) {
		t.Errorf("snap_func_total = %v", got)
	}
	if got := s["snap_gauge"]; got != int64(-4) {
		t.Errorf("snap_gauge = %v", got)
	}
	if got := s["snap_hist_count"]; got != uint64(1) {
		t.Errorf("snap_hist_count = %v", got)
	}
	if _, ok := s["snap_hist_p95"]; !ok {
		t.Error("snapshot missing snap_hist_p95")
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{1, "1"},
		{1.5, "1.5"},
		{0.000001, "0.000001"},
		{0, "0"},
	} {
		if got := formatFloat(tc.in); got != tc.want {
			t.Errorf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func ExampleRegistry_WritePrometheus() {
	r := NewRegistry()
	c := r.Counter("example_total", "Things that happened.")
	c.Add(2)
	var sb strings.Builder
	_ = r.WritePrometheus(&sb)
	fmt.Print(sb.String())
	// Output:
	// # HELP example_total Things that happened.
	// # TYPE example_total counter
	// example_total 2
}

// TestWritePrometheusLabeled: extra labels land on every series of the
// registry (after any constant labels), and a shared seen map keeps
// HELP/TYPE headers unique when several registries render one page.
func TestWritePrometheusLabeled(t *testing.T) {
	a := NewRegistry()
	a.Counter("vkg_requests_total", "Requests.", Label{"kind", "topk"}).Add(3)
	a.Histogram("vkg_wait_seconds", "Wait.", []float64{1}).Observe(0.5)
	b := NewRegistry()
	b.Counter("vkg_requests_total", "Requests.", Label{"kind", "topk"}).Add(7)

	var sb strings.Builder
	seen := make(map[string]bool)
	if err := a.WritePrometheusLabeled(&sb, seen, Label{"tenant", "movie"}); err != nil {
		t.Fatal(err)
	}
	if err := b.WritePrometheusLabeled(&sb, seen, Label{"tenant", "amazon"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		`vkg_requests_total{kind="topk",tenant="movie"} 3`,
		`vkg_requests_total{kind="topk",tenant="amazon"} 7`,
		`vkg_wait_seconds_bucket{tenant="movie",le="1"} 1`,
		`vkg_wait_seconds_count{tenant="movie"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "# HELP vkg_requests_total"); got != 1 {
		t.Errorf("HELP header for shared family emitted %d times, want 1:\n%s", got, out)
	}
}
