package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (string, *http.Response) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return string(body), resp
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("http_test_total", "Test counter.")
	c.Add(5)
	slow := NewSlowLog(8)
	slow.SetThreshold(time.Millisecond)
	tr := StartTrace()
	tr.Step(StageSearch)
	tr.Finish()
	slow.Record("topk ent=1 rel=2 k=5", 3*time.Millisecond, tr)

	traces := NewTraceStore(8)
	traces.Record(TraceRecord{ID: tr.TraceID(), Span: tr.SpanID(), Time: tr.StartTime(),
		Kind: "topk", Status: TraceError, Detail: "topk ent=1 rel=2 k=5", Latency: tr.Wall, Trace: tr})

	srv := httptest.NewServer(Handler(r, slow, traces))
	defer srv.Close()

	body, resp := get(t, srv, "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	if !strings.Contains(body, "http_test_total 5") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}

	body, _ = get(t, srv, "/debug/vars")
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := vars["vkg"]; !ok {
		t.Error("/debug/vars missing the vkg var")
	}

	body, _ = get(t, srv, "/slowlog")
	var sl struct {
		ThresholdMS float64 `json:"threshold_ms"`
		Entries     []struct {
			Query     string  `json:"query"`
			LatencyMS float64 `json:"latency_ms"`
			Stages    []struct {
				Stage string  `json:"stage"`
				MS    float64 `json:"ms"`
			} `json:"stages"`
		} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &sl); err != nil {
		t.Fatalf("/slowlog is not JSON: %v\n%s", err, body)
	}
	if sl.ThresholdMS != 1 {
		t.Errorf("threshold_ms = %v, want 1", sl.ThresholdMS)
	}
	if len(sl.Entries) != 1 || sl.Entries[0].Query != "topk ent=1 rel=2 k=5" {
		t.Fatalf("entries = %+v", sl.Entries)
	}
	if len(sl.Entries[0].Stages) != 1 || sl.Entries[0].Stages[0].Stage != StageSearch {
		t.Errorf("stages = %+v", sl.Entries[0].Stages)
	}

	body, _ = get(t, srv, "/traces")
	var tl struct {
		Traces []struct {
			TraceID string `json:"trace_id"`
			Status  string `json:"status"`
			Link    string `json:"link"`
		} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatalf("/traces is not JSON: %v\n%s", err, body)
	}
	if len(tl.Traces) != 1 || tl.Traces[0].TraceID != tr.TraceID().String() || tl.Traces[0].Status != TraceError {
		t.Fatalf("/traces = %+v", tl.Traces)
	}
	body, resp = get(t, srv, tl.Traces[0].Link)
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "trace "+tr.TraceID().String()) {
		t.Errorf("GET %s = %d:\n%s", tl.Traces[0].Link, resp.StatusCode, body)
	}
	if !strings.Contains(body, StageSearch) {
		t.Errorf("trace render missing stage breakdown:\n%s", body)
	}
	_, resp = get(t, srv, "/traces/ffffffffffffffffffffffffffffffff")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id = %d, want 404", resp.StatusCode)
	}
	_, resp = get(t, srv, "/traces/not-hex")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed trace id = %d, want 400", resp.StatusCode)
	}

	body, _ = get(t, srv, "/")
	if !strings.Contains(body, "/metrics") || !strings.Contains(body, "/traces") {
		t.Errorf("index page missing endpoint list:\n%s", body)
	}

	_, resp = get(t, srv, "/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope = %d, want 404", resp.StatusCode)
	}

	body, _ = get(t, srv, "/debug/pprof/cmdline")
	if body == "" {
		t.Error("/debug/pprof/cmdline returned empty body")
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(Handler(nil, nil, nil))
	defer srv.Close()
	body, resp := get(t, srv, "/metrics")
	if resp.StatusCode != http.StatusOK || body != "" {
		t.Fatalf("nil-registry /metrics: status %d body %q", resp.StatusCode, body)
	}
	body, _ = get(t, srv, "/slowlog")
	var sl struct {
		Entries []struct{} `json:"entries"`
	}
	if err := json.Unmarshal([]byte(body), &sl); err != nil {
		t.Fatalf("/slowlog is not JSON: %v", err)
	}
	body, resp = get(t, srv, "/traces")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("nil-store /traces: status %d", resp.StatusCode)
	}
	var tl struct {
		Traces []struct{} `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		t.Fatalf("/traces is not JSON: %v\n%s", err, body)
	}
	if len(tl.Traces) != 0 {
		t.Errorf("nil-store /traces has %d entries", len(tl.Traces))
	}
}
