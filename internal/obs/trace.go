package obs

import (
	"fmt"
	"strings"
	"time"
)

// Stage names used by the engine's query trace. The stages of one query are
// contiguous — each Step closes the segment since the previous mark — so
// their durations sum to the traced wall time.
const (
	StageCache     = "cache"     // result-cache lookup
	StageValidate  = "validate"  // id validation under the read lock
	StageTransform = "transform" // query-point construction + JL projection
	StageSearch    = "search"    // index seed probe (Algorithm 3 line 2)
	StageRefine    = "refine"    // S2-ordered walk + S1 refinement
	StageCrack     = "crack"     // index cracking (write lock) or warm no-op
	StageEstimate  = "estimate"  // aggregate estimation after the crack step
	StageWait      = "wait"      // blocked on a coalesced in-flight execution
)

// Span is one timed stage of a query.
type Span struct {
	Stage string
	// Start is the offset from the beginning of the query.
	Start time.Duration
	Dur   time.Duration
}

// ShardSpan is one per-shard child span of a query trace: the crack step's
// work on a single shard, parented under the query's span. It records the
// wait for the shard's write lock, the time holding it, and the structural
// deltas (splits performed, nodes created) attributable to this query on
// this shard.
type ShardSpan struct {
	// Span identifies this child span; Parent is the owning query's span.
	Span   SpanID
	Parent SpanID
	// Stage is the stage this child ran under (currently always "crack").
	Stage string
	// Shard is the spatial shard index.
	Shard int
	// Start is the offset from the beginning of the query.
	Start time.Duration
	// LockWait is the wait to acquire the shard's write lock; Dur the time
	// holding it to crack.
	LockWait time.Duration
	Dur      time.Duration
	// Splits and Nodes are the binary splits performed and index nodes
	// created on this shard by this query.
	Splits int
	Nodes  int
}

// QueryTrace is an opt-in per-query breakdown: where the time went, stage
// by stage, plus the cost counters the paper's analysis is stated in (node
// accesses under Lemma 3 terms, candidates examined, bound-pruned
// refinements). A nil *QueryTrace is valid and every method is a no-op on
// it, so instrumented code calls unconditionally.
//
// A trace is one node of a request tree: it carries a 128-bit trace id
// shared by every span of the request (minted fresh, or adopted from an
// inbound traceparent header), its own span id, and the parent span it hangs
// under (the HTTP request span, or a batch request's span). Per-shard crack
// work appears as ShardSpan children; a coalesced follower links the leader
// trace that actually executed the descent via LeaderTrace.
type QueryTrace struct {
	start time.Time
	mark  time.Time

	id     TraceID
	span   SpanID
	parent SpanID
	forced bool

	// Spans are the timed stages in execution order.
	Spans []Span
	// Shards are the per-shard crack child spans, in shard order (only the
	// shards this query actually write-locked).
	Shards []ShardSpan
	// LeaderTrace links a coalesced follower to the trace of the in-flight
	// execution it shared; zero otherwise. The leader may belong to a
	// different request entirely — that cross-request edge is the point.
	LeaderTrace TraceID
	// Wall is the total traced duration (set by Finish).
	Wall time.Duration

	// CacheHit marks a query answered from the result cache.
	CacheHit bool
	// Coalesced marks a query that shared another in-flight execution.
	Coalesced bool

	// Examined counts candidates whose S1 distance was computed.
	Examined int
	// PrunedByBound counts candidates abandoned early because their partial
	// S1 distance already exceeded the current kth bound.
	PrunedByBound int
	// Splits is the number of binary splits this query's cracking step
	// performed (0 for a warm region).
	Splits int
	// NodesCreated is the number of index nodes the cracking step created.
	NodesCreated int
	// Accessed/BallSize report the sampled and total ball sizes of an
	// aggregate query (a and b of Theorem 4).
	Accessed, BallSize int
}

// StartTrace begins a trace at the current time with a freshly minted trace
// id and span id.
func StartTrace() *QueryTrace {
	return StartTraceLinked(TraceID{}, SpanID{}, false)
}

// StartTraceLinked begins a trace that joins an existing request tree: id is
// adopted as the trace id (a zero id mints a fresh one), parent becomes the
// new span's parent, and forced marks the trace for guaranteed retention in
// a TraceStore (set for explicitly requested traces and sampled inbound
// traceparents). The span id is always minted fresh.
func StartTraceLinked(id TraceID, parent SpanID, forced bool) *QueryTrace {
	now := time.Now()
	if id.IsZero() {
		id = NewTraceID()
	}
	return &QueryTrace{start: now, mark: now, id: id, span: NewSpanID(), parent: parent, forced: forced}
}

// TraceID returns the trace's 128-bit id (zero on a nil trace).
func (t *QueryTrace) TraceID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// SpanID returns the trace's own span id (zero on a nil trace).
func (t *QueryTrace) SpanID() SpanID {
	if t == nil {
		return SpanID{}
	}
	return t.span
}

// ParentSpan returns the parent span id (zero for a root or nil trace).
func (t *QueryTrace) ParentSpan() SpanID {
	if t == nil {
		return SpanID{}
	}
	return t.parent
}

// Forced reports whether the trace was marked for guaranteed retention.
func (t *QueryTrace) Forced() bool {
	if t == nil {
		return false
	}
	return t.forced
}

// StartTime returns when the trace began (zero on a nil trace) — the query
// start time the slow log stamps entries with.
func (t *QueryTrace) StartTime() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// AddShardSpan appends a per-shard crack child span: the crack step's work
// on shard i, started at the given wall-clock time, with its lock wait,
// write-lock hold, and structural deltas. No-op on a nil trace.
func (t *QueryTrace) AddShardSpan(shard int, start time.Time, lockWait, held time.Duration, splits, nodes int) {
	if t == nil {
		return
	}
	t.Shards = append(t.Shards, ShardSpan{
		Span:     NewSpanID(),
		Parent:   t.span,
		Stage:    StageCrack,
		Shard:    shard,
		Start:    start.Sub(t.start),
		LockWait: lockWait,
		Dur:      held,
		Splits:   splits,
		Nodes:    nodes,
	})
}

// LinkLeader records the trace id of the in-flight execution a coalesced
// follower shared. No-op on a nil trace or a zero leader.
func (t *QueryTrace) LinkLeader(leader TraceID) {
	if t == nil || leader.IsZero() {
		return
	}
	t.LeaderTrace = leader
}

// Step closes the current segment under the given stage name and starts the
// next one. No-op on a nil trace.
func (t *QueryTrace) Step(stage string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.Spans = append(t.Spans, Span{Stage: stage, Start: t.mark.Sub(t.start), Dur: now.Sub(t.mark)})
	t.mark = now
}

// Finish stamps the total wall time. No-op on a nil trace.
func (t *QueryTrace) Finish() {
	if t == nil {
		return
	}
	t.Wall = time.Since(t.start)
}

// String renders a one-line stage breakdown, e.g.
// "1.2ms (cache 10µs, validate 1µs, transform 8µs, search 200µs, refine 900µs, crack 80µs)".
func (t *QueryTrace) String() string {
	if t == nil {
		return "<no trace>"
	}
	parts := make([]string, 0, len(t.Spans))
	for _, s := range t.Spans {
		parts = append(parts, fmt.Sprintf("%s %v", s.Stage, s.Dur.Round(time.Microsecond)))
	}
	suffix := ""
	if len(t.Shards) > 0 {
		suffix = fmt.Sprintf(" [%d shard cracks]", len(t.Shards))
	}
	return fmt.Sprintf("%v (%s)%s", t.Wall.Round(time.Microsecond), strings.Join(parts, ", "), suffix)
}
