package obs

import (
	"fmt"
	"strings"
	"time"
)

// Stage names used by the engine's query trace. The stages of one query are
// contiguous — each Step closes the segment since the previous mark — so
// their durations sum to the traced wall time.
const (
	StageCache     = "cache"     // result-cache lookup
	StageValidate  = "validate"  // id validation under the read lock
	StageTransform = "transform" // query-point construction + JL projection
	StageSearch    = "search"    // index seed probe (Algorithm 3 line 2)
	StageRefine    = "refine"    // S2-ordered walk + S1 refinement
	StageCrack     = "crack"     // index cracking (write lock) or warm no-op
	StageEstimate  = "estimate"  // aggregate estimation after the crack step
	StageWait      = "wait"      // blocked on a coalesced in-flight execution
)

// Span is one timed stage of a query.
type Span struct {
	Stage string
	// Start is the offset from the beginning of the query.
	Start time.Duration
	Dur   time.Duration
}

// QueryTrace is an opt-in per-query breakdown: where the time went, stage
// by stage, plus the cost counters the paper's analysis is stated in (node
// accesses under Lemma 3 terms, candidates examined, bound-pruned
// refinements). A nil *QueryTrace is valid and every method is a no-op on
// it, so instrumented code calls unconditionally.
type QueryTrace struct {
	start time.Time
	mark  time.Time

	// Spans are the timed stages in execution order.
	Spans []Span
	// Wall is the total traced duration (set by Finish).
	Wall time.Duration

	// CacheHit marks a query answered from the result cache.
	CacheHit bool
	// Coalesced marks a query that shared another in-flight execution.
	Coalesced bool

	// Examined counts candidates whose S1 distance was computed.
	Examined int
	// PrunedByBound counts candidates abandoned early because their partial
	// S1 distance already exceeded the current kth bound.
	PrunedByBound int
	// Splits is the number of binary splits this query's cracking step
	// performed (0 for a warm region).
	Splits int
	// NodesCreated is the number of index nodes the cracking step created.
	NodesCreated int
	// Accessed/BallSize report the sampled and total ball sizes of an
	// aggregate query (a and b of Theorem 4).
	Accessed, BallSize int
}

// StartTrace begins a trace at the current time.
func StartTrace() *QueryTrace {
	now := time.Now()
	return &QueryTrace{start: now, mark: now}
}

// Step closes the current segment under the given stage name and starts the
// next one. No-op on a nil trace.
func (t *QueryTrace) Step(stage string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.Spans = append(t.Spans, Span{Stage: stage, Start: t.mark.Sub(t.start), Dur: now.Sub(t.mark)})
	t.mark = now
}

// Finish stamps the total wall time. No-op on a nil trace.
func (t *QueryTrace) Finish() {
	if t == nil {
		return
	}
	t.Wall = time.Since(t.start)
}

// String renders a one-line stage breakdown, e.g.
// "1.2ms (cache 10µs, validate 1µs, transform 8µs, search 200µs, refine 900µs, crack 80µs)".
func (t *QueryTrace) String() string {
	if t == nil {
		return "<no trace>"
	}
	parts := make([]string, 0, len(t.Spans))
	for _, s := range t.Spans {
		parts = append(parts, fmt.Sprintf("%s %v", s.Stage, s.Dur.Round(time.Microsecond)))
	}
	return fmt.Sprintf("%v (%s)", t.Wall.Round(time.Microsecond), strings.Join(parts, ", "))
}
