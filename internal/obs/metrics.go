// Package obs is the engine's dependency-free observability kit: atomic
// counters, gauges, and fixed-bucket latency histograms collected in a
// Registry with a Prometheus text-format exposition, plus per-query stage
// traces (trace.go) and a slow-query log (slowlog.go) served over HTTP
// (http.go).
//
// The package is built for hot paths that run under an engine read lock:
// every increment and histogram observation is lock-free (atomic adds plus
// a CAS loop for the float sum), so instrumented code never serializes on
// the metrics and the cost with no listener attached is a few atomic
// operations per query.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
//
// Reset exists for benchmarks that separate measurement phases; Prometheus
// consumers treat a decrease as a process restart, which is the intended
// reading.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// exemplar is one retained (trace id, value, timestamp) sample attached to
// a histogram bucket — the OpenMetrics bridge from an aggregate latency
// series to a concrete trace on /traces. unixSec is float seconds as the
// OpenMetrics exemplar timestamp wants.
type exemplar struct {
	trace   TraceID
	value   float64
	unixSec float64
}

// Histogram is a fixed-bucket histogram with a lock-free observation path:
// one atomic add into the bucket, one into the total count, and a CAS loop
// folding the value into the float sum. Buckets are cumulative only at
// exposition time; the stored counts are per-bucket.
//
// Each bucket additionally holds the most recent traced observation as an
// exemplar (one atomic pointer swap, paid only by traced requests); the
// OpenMetrics exposition renders them, the Prometheus 0.0.4 one ignores
// them, so plain Observe calls and scrapes are byte-identical to before.
type Histogram struct {
	bounds    []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts    []atomic.Uint64
	count     atomic.Uint64
	sum       atomic.Uint64 // math.Float64bits of the running sum
	exemplars []atomic.Pointer[exemplar]
}

// LatencyBuckets are the default histogram bounds for durations in seconds:
// powers of two from 1µs to ~67s. Fixed exponential bounds keep the bucket
// search branch-predictable and make p50/p95/p99 interpolation stable across
// four decades of latency.
func LatencyBuckets() []float64 {
	b := make([]float64, 27)
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}

// NewHistogram returns a histogram over the given ascending upper bounds.
// A nil or empty bounds slice selects LatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets()
	}
	h := &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[exemplar], len(bounds)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search keeps the fast path at ~5 comparisons for the default
	// 27-bucket layout; no locks anywhere.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar is Observe plus an exemplar: when id is non-zero the
// observation's bucket remembers (id, v, now) as its latest traced sample.
// A zero id is exactly Observe — untraced hot paths pay nothing beyond the
// branch.
func (h *Histogram) ObserveExemplar(v float64, id TraceID) {
	h.Observe(v)
	if id.IsZero() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.exemplars[i].Store(&exemplar{trace: id, value: v, unixSec: float64(time.Now().UnixMicro()) / 1e6})
}

// HistSnapshot is a point-in-time summary of a histogram.
type HistSnapshot struct {
	Count         uint64
	Sum           float64
	P50, P95, P99 float64
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Snapshot summarizes the histogram. Concurrent observations may land
// between the atomic reads; the snapshot is race-clean but not a perfect
// cut, which is the usual contract for live metrics.
func (h *Histogram) Snapshot() HistSnapshot {
	counts := make([]uint64, len(h.counts))
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return HistSnapshot{
		Count: h.count.Load(),
		Sum:   math.Float64frombits(h.sum.Load()),
		P50:   quantile(h.bounds, counts, total, 0.50),
		P95:   quantile(h.bounds, counts, total, 0.95),
		P99:   quantile(h.bounds, counts, total, 0.99),
	}
}

// quantile estimates the q-quantile by linear interpolation inside the
// bucket containing the target rank. Values in the overflow bucket report
// the largest finite bound.
func quantile(bounds []float64, counts []uint64, total uint64, q float64) float64 {
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(bounds) {
			return bounds[len(bounds)-1] // overflow bucket: clamp
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}

// Label is one constant Prometheus label attached at registration.
type Label struct {
	Key, Value string
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type metric struct {
	family string // metric family name, e.g. vkg_query_latency_seconds
	labels string // rendered constant labels: `kind="topk"` or ""
	help   string
	kind   metricKind

	c  *Counter
	cf func() uint64
	g  *Gauge
	gf func() float64
	h  *Histogram
}

// Registry holds named metrics and renders them in Prometheus text format.
// Registration takes a lock; reads of registered metrics never do.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return strings.Join(parts, ",")
}

func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter. Metrics of the same family
// (same name, different labels) should be registered consecutively so the
// exposition groups them under one HELP/TYPE header.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(&metric{family: name, labels: renderLabels(labels), help: help, kind: kindCounter, c: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — for monotone counts maintained elsewhere (e.g. index node-access
// counters owned by the tree).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.add(&metric{family: name, labels: renderLabels(labels), help: help, kind: kindCounterFunc, cf: fn})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(&metric{family: name, labels: renderLabels(labels), help: help, kind: kindGauge, g: g})
	return g
}

// GaugeFunc registers a gauge computed by fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.add(&metric{family: name, labels: renderLabels(labels), help: help, kind: kindGaugeFunc, gf: fn})
}

// Histogram registers and returns a new histogram; nil bounds selects
// LatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	h := NewHistogram(bounds)
	r.add(&metric{family: name, labels: renderLabels(labels), help: help, kind: kindHistogram, h: h})
	return h
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). HELP/TYPE headers are emitted at the
// first metric of each family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.WritePrometheusLabeled(w, nil)
}

// WritePrometheusLabeled renders the registry with extra constant labels
// appended to every series — how a multi-tenant server exposes several
// engine registries on one /metrics page, each stamped tenant="name". seen
// carries family names whose HELP/TYPE headers were already emitted by an
// earlier registry on the same page, so shared families keep a single
// header; pass nil for a standalone page.
func (r *Registry) WritePrometheusLabeled(w io.Writer, seen map[string]bool, extra ...Label) error {
	return r.writeText(w, seen, false, extra...)
}

// WriteOpenMetrics renders the registry in the OpenMetrics 1.0 text format,
// terminated by the mandatory "# EOF". It differs from WritePrometheus in
// two ways: counter families drop their "_total" suffix in HELP/TYPE headers
// (samples keep it, per the grammar), and histogram bucket lines carry
// exemplars — `# {trace_id="..."} value ts` — linking the bucket to the most
// recent traced observation that landed in it. Serve it under content type
// "application/openmetrics-text; version=1.0.0; charset=utf-8".
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.WriteOpenMetricsLabeled(w, nil); err != nil {
		return err
	}
	return WriteOpenMetricsEOF(w)
}

// WriteOpenMetricsLabeled is WriteOpenMetrics without the trailing "# EOF",
// for pages composed from several registries: render each with a shared
// seen map, then call WriteOpenMetricsEOF once.
func (r *Registry) WriteOpenMetricsLabeled(w io.Writer, seen map[string]bool, extra ...Label) error {
	return r.writeText(w, seen, true, extra...)
}

// WriteOpenMetricsEOF terminates an OpenMetrics page.
func WriteOpenMetricsEOF(w io.Writer) error {
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

// omFamily maps a metric family to its OpenMetrics MetricFamily name: the
// grammar requires counter sample names to end in _total while the family
// name in HELP/TYPE must not.
func omFamily(m *metric) string {
	if m.kind == kindCounter || m.kind == kindCounterFunc {
		return strings.TrimSuffix(m.family, "_total")
	}
	return m.family
}

func (r *Registry) writeText(w io.Writer, seen map[string]bool, om bool, extra ...Label) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	if seen == nil {
		seen = make(map[string]bool)
	}
	extraLabels := renderLabels(extra)
	for _, m := range metrics {
		if !seen[m.family] {
			seen[m.family] = true
			typ := "counter"
			switch m.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			header := m.family
			if om {
				header = omFamily(m)
			}
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", header, m.help, header, typ); err != nil {
				return err
			}
		}
		if err := m.write(w, extraLabels, om); err != nil {
			return err
		}
	}
	return nil
}

func (m *metric) write(w io.Writer, extraLabels string, om bool) error {
	series := func(suffix, extraLabel string) string {
		labels := m.labels
		if extraLabels != "" {
			if labels != "" {
				labels += ","
			}
			labels += extraLabels
		}
		if extraLabel != "" {
			if labels != "" {
				labels += ","
			}
			labels += extraLabel
		}
		if labels == "" {
			return m.family + suffix
		}
		return m.family + suffix + "{" + labels + "}"
	}
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", series("", ""), m.c.Value())
		return err
	case kindCounterFunc:
		_, err := fmt.Fprintf(w, "%s %d\n", series("", ""), m.cf())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", series("", ""), m.g.Value())
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s %s\n", series("", ""), formatFloat(m.gf()))
		return err
	case kindHistogram:
		// In OpenMetrics mode each bucket line may carry its exemplar:
		// `... # {trace_id="<hex>"} value ts`. Exemplars are only legal in
		// OpenMetrics; the 0.0.4 exposition omits them.
		exemplarSuffix := func(i int) string {
			if !om {
				return ""
			}
			ex := m.h.exemplars[i].Load()
			if ex == nil {
				return ""
			}
			return fmt.Sprintf(" # {trace_id=%q} %s %s", ex.trace.String(), formatFloat(ex.value), formatFloat(ex.unixSec))
		}
		var cum uint64
		for i, b := range m.h.bounds {
			cum += m.h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s %d%s\n", series("_bucket", fmt.Sprintf("le=%q", formatFloat(b))), cum, exemplarSuffix(i)); err != nil {
				return err
			}
		}
		cum += m.h.counts[len(m.h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s %d%s\n", series("_bucket", `le="+Inf"`), cum, exemplarSuffix(len(m.h.bounds))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", series("_sum", ""), formatFloat(math.Float64frombits(m.h.sum.Load()))); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", series("_count", ""), m.h.count.Load())
		return err
	}
	return nil
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}

// Snapshot returns every metric as a flat name -> value map (histograms
// contribute _count, _sum, _p50, _p95, _p99 entries). This is what the
// expvar integration publishes under /debug/vars.
func (r *Registry) Snapshot() map[string]interface{} {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.Unlock()

	out := make(map[string]interface{}, len(metrics))
	for _, m := range metrics {
		name := m.family
		if m.labels != "" {
			name += "{" + m.labels + "}"
		}
		switch m.kind {
		case kindCounter:
			out[name] = m.c.Value()
		case kindCounterFunc:
			out[name] = m.cf()
		case kindGauge:
			out[name] = m.g.Value()
		case kindGaugeFunc:
			out[name] = m.gf()
		case kindHistogram:
			s := m.h.Snapshot()
			out[name+"_count"] = s.Count
			out[name+"_sum"] = s.Sum
			out[name+"_p50"] = s.P50
			out[name+"_p95"] = s.P95
			out[name+"_p99"] = s.P99
		}
	}
	return out
}
