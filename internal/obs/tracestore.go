package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Trace outcome statuses recorded in a TraceStore. Everything except
// TraceOK is a "tail" status: those records are always retained, because
// errored, shed, timed-out, and cancelled requests are exactly the ones an
// operator comes looking for.
const (
	TraceOK       = "ok"
	TraceError    = "error"
	TraceShed     = "shed"
	TraceDeadline = "deadline"
	TraceCanceled = "canceled"
)

// TraceRecord is one retained trace-store entry. A single trace id may own
// several records — the serving layer's request envelope and the engine's
// query trace are recorded independently and reassembled at read time, the
// way span collectors work — so Find returns a slice.
type TraceRecord struct {
	// ID is the 128-bit trace id the record belongs to; Span identifies
	// this record's own span within the trace (the request span for an
	// envelope record, the query span for an engine record).
	ID   TraceID
	Span SpanID
	// Time is when the traced work started (not when it was recorded).
	Time time.Time
	// Kind classifies the record: "topk"/"aggregate" for engine query
	// records, "query"/"batch" for serving-layer request envelopes.
	Kind string
	// Tenant is the serving-layer tenant, when known.
	Tenant string
	// Status is one of the Trace* constants.
	Status string
	// Detail is a short human description (query shape, method+path, error).
	Detail string
	// Latency is the traced wall time.
	Latency time.Duration
	// Trace is the span tree for engine query records; nil for envelopes.
	Trace *QueryTrace
}

// TraceStoreStats are the store's retention counters.
type TraceStoreStats struct {
	// Offered counts records offered to the store; Kept those retained.
	Offered uint64
	Kept    uint64
	// KeptForced/Tail/Slow/Head break Kept down by the retention rule that
	// fired first (forced > tail status > slow > head sample).
	KeptForced uint64
	KeptTail   uint64
	KeptSlow   uint64
	KeptHead   uint64
	// Evicted counts retained records later overwritten by newer ones.
	Evicted uint64
	// Resident is the current record count.
	Resident int
}

// TraceStore is a bounded in-memory ring of retained trace records with a
// two-part retention policy:
//
//   - tail-based: forced traces (explicitly requested, or carrying a sampled
//     inbound traceparent), every non-ok status (error/shed/deadline/
//     canceled), and anything slower than SlowThreshold are always kept —
//     the interesting tail survives regardless of volume;
//   - head-probabilistic: of the remaining fast, successful traces a
//     deterministic fraction (HeadRate) is kept, decided from the trace-id
//     bits so every store in a request's path makes the same call without
//     coordination and without an RNG on the hot path.
//
// The ring overwrites oldest-first, so retention bounds memory: capacity
// records, each holding at most one query's span tree. A nil *TraceStore is
// valid; every method no-ops (Keep reports false).
type TraceStore struct {
	headRate atomic.Uint64 // math.Float64bits of the keep fraction in [0,1]
	slowNS   atomic.Int64  // slow-retention threshold; 0 disables

	offered    atomic.Uint64
	keptForced atomic.Uint64
	keptTail   atomic.Uint64
	keptSlow   atomic.Uint64
	keptHead   atomic.Uint64
	evicted    atomic.Uint64

	mu   sync.Mutex
	buf  []TraceRecord
	next int
	n    int
}

// DefaultTraceSlow is the default slow-retention threshold: anything slower
// is kept regardless of the head sample.
const DefaultTraceSlow = 100 * time.Millisecond

// NewTraceStore returns a store retaining the most recent capacity records
// (default 512). Head sampling starts disabled (rate 0) — engines embedded
// in batch jobs should not pay for retention nobody reads — and the slow
// threshold at DefaultTraceSlow; servers raise the head rate via SetHeadRate.
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = 512
	}
	s := &TraceStore{buf: make([]TraceRecord, capacity)}
	s.slowNS.Store(int64(DefaultTraceSlow))
	return s
}

// SetHeadRate sets the head-sampling keep fraction, clamped to [0, 1].
// No-op on a nil store.
func (s *TraceStore) SetHeadRate(r float64) {
	if s == nil {
		return
	}
	if r < 0 || math.IsNaN(r) {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	s.headRate.Store(math.Float64bits(r))
}

// HeadRate returns the current head-sampling fraction (0 on a nil store).
func (s *TraceStore) HeadRate() float64 {
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.headRate.Load())
}

// SetSlowThreshold sets the latency above which traces are always kept; a
// non-positive d disables slow retention. No-op on a nil store.
func (s *TraceStore) SetSlowThreshold(d time.Duration) {
	if s == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	s.slowNS.Store(int64(d))
}

// SlowThreshold returns the slow-retention threshold (0 when disabled or on
// a nil store).
func (s *TraceStore) SlowThreshold() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.slowNS.Load())
}

// headKeep is the deterministic head-sample coin: keep when the trace id's
// low word falls under rate × 2⁶⁴.
func (s *TraceStore) headKeep(id TraceID) bool {
	rate := math.Float64frombits(s.headRate.Load())
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return float64(id.sampleWord()) < rate*(1<<64)
}

// Keep reports whether a record with the given shape would be retained,
// without recording anything. Callers use it to skip building the record's
// Detail string for traces that will be dropped; the decision is
// deterministic in (id, forced, status, latency), so a later Record with
// the same inputs agrees. False on a nil store.
func (s *TraceStore) Keep(id TraceID, forced bool, status string, lat time.Duration) bool {
	if s == nil {
		return false
	}
	keep, _ := s.decide(id, forced, status, lat)
	return keep
}

// decide applies the retention policy and names the rule that fired.
func (s *TraceStore) decide(id TraceID, forced bool, status string, lat time.Duration) (bool, *atomic.Uint64) {
	switch {
	case forced:
		return true, &s.keptForced
	case status != TraceOK && status != "":
		return true, &s.keptTail
	case s.slowNS.Load() > 0 && int64(lat) >= s.slowNS.Load():
		return true, &s.keptSlow
	case s.headKeep(id):
		return true, &s.keptHead
	}
	return false, nil
}

// Record offers a record to the store; it is retained (true) or dropped
// (false) per the retention policy. forced comes from the record's trace
// when one is attached; envelope records pass their own flag via
// RecordForced. No-op (false) on a nil store.
func (s *TraceStore) Record(rec TraceRecord) bool {
	if s == nil {
		return false
	}
	return s.RecordForced(rec, rec.Trace.Forced())
}

// RecordForced is Record with an explicit forced-retention flag, for
// envelope records that carry no *QueryTrace.
func (s *TraceStore) RecordForced(rec TraceRecord, forced bool) bool {
	if s == nil {
		return false
	}
	s.offered.Add(1)
	keep, reason := s.decide(rec.ID, forced, rec.Status, rec.Latency)
	if !keep {
		return false
	}
	reason.Add(1)
	s.mu.Lock()
	if s.n == len(s.buf) {
		s.evicted.Add(1)
	}
	s.buf[s.next] = rec
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.mu.Unlock()
	return true
}

// Entries returns the retained records, newest first. Empty on a nil store.
func (s *TraceStore) Entries() []TraceRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TraceRecord, 0, s.n)
	for i := 1; i <= s.n; i++ {
		out = append(out, s.buf[(s.next-i+len(s.buf))%len(s.buf)])
	}
	return out
}

// Find returns every retained record with the given trace id, oldest first
// — the request envelope and its query traces reassemble into one tree at
// read time. Empty on a nil store or an unknown id.
func (s *TraceStore) Find(id TraceID) []TraceRecord {
	if s == nil || id.IsZero() {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []TraceRecord
	for i := s.n; i >= 1; i-- {
		if r := s.buf[(s.next-i+len(s.buf))%len(s.buf)]; r.ID == id {
			out = append(out, r)
		}
	}
	return out
}

// Len returns the retained record count (0 on a nil store).
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Stats returns the retention counters (zero on a nil store).
func (s *TraceStore) Stats() TraceStoreStats {
	if s == nil {
		return TraceStoreStats{}
	}
	st := TraceStoreStats{
		Offered:    s.offered.Load(),
		KeptForced: s.keptForced.Load(),
		KeptTail:   s.keptTail.Load(),
		KeptSlow:   s.keptSlow.Load(),
		KeptHead:   s.keptHead.Load(),
		Evicted:    s.evicted.Load(),
		Resident:   s.Len(),
	}
	st.Kept = st.KeptForced + st.KeptTail + st.KeptSlow + st.KeptHead
	return st
}
