package h2alsh

import (
	"math/rand"
	"sort"
	"testing"
)

func randomData(n, dim int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n*dim)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	return data
}

func bruteMIPS(dim int, data, q []float64, k int, skip func(int32) bool) []Result {
	n := len(data) / dim
	res := make([]Result, 0, n)
	for i := 0; i < n; i++ {
		id := int32(i)
		if skip != nil && skip(id) {
			continue
		}
		var dot float64
		for j, v := range q {
			dot += data[i*dim+j] * v
		}
		res = append(res, Result{ID: id, Score: dot})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score != res[j].Score {
			return res[i].Score > res[j].Score
		}
		return res[i].ID < res[j].ID
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}

func recallAtK(got, want []Result) float64 {
	w := make(map[int32]bool, len(want))
	for _, r := range want {
		w[r.ID] = true
	}
	hit := 0
	for _, r := range got {
		if w[r.ID] {
			hit++
		}
	}
	if len(want) == 0 {
		return 1
	}
	return float64(hit) / float64(len(want))
}

func TestTopKRecall(t *testing.T) {
	dim := 16
	data := randomData(3000, dim, 1)
	idx, err := New(dim, data, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	var total float64
	const queries = 30
	for qi := 0; qi < queries; qi++ {
		q := make([]float64, dim)
		for j := range q {
			q[j] = rng.NormFloat64()
		}
		got, _ := idx.TopK(q, 10, nil)
		want := bruteMIPS(dim, data, q, 10, nil)
		total += recallAtK(got, want)
	}
	if avg := total / queries; avg < 0.8 {
		t.Fatalf("average recall@10 = %.3f, want >= 0.8", avg)
	}
}

func TestLayersOrderedByNorm(t *testing.T) {
	dim := 8
	data := randomData(2000, dim, 3)
	idx, err := New(dim, data, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if idx.NumLayers() < 2 {
		t.Fatalf("expected multiple norm layers, got %d", idx.NumLayers())
	}
	for i := 1; i < len(idx.layers); i++ {
		if idx.layers[i].maxNorm > idx.layers[i-1].maxNorm {
			t.Fatalf("layer %d maxNorm %v > layer %d maxNorm %v",
				i, idx.layers[i].maxNorm, i-1, idx.layers[i-1].maxNorm)
		}
	}
	// Every point must land in exactly one layer.
	seen := make(map[int32]bool)
	for _, l := range idx.layers {
		for _, id := range l.ids {
			if seen[id] {
				t.Fatalf("point %d in two layers", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != idx.n {
		t.Fatalf("layers cover %d of %d points", len(seen), idx.n)
	}
}

func TestEarlyTermination(t *testing.T) {
	// With a query aligned to the largest-norm item, deep layers should not
	// be probed.
	dim := 8
	rng := rand.New(rand.NewSource(4))
	n := 2000
	data := make([]float64, n*dim)
	for i := 0; i < n; i++ {
		scale := rng.Float64() + 0.01
		for j := 0; j < dim; j++ {
			data[i*dim+j] = rng.NormFloat64() * scale
		}
	}
	// Make item 0 dominant.
	for j := 0; j < dim; j++ {
		data[j] = 100
	}
	idx, err := New(dim, data, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := make([]float64, dim)
	for j := range q {
		q[j] = 1
	}
	got, stats := idx.TopK(q, 1, nil)
	if len(got) != 1 || got[0].ID != 0 {
		t.Fatalf("TopK = %+v, want item 0", got)
	}
	if stats.LayersProbed >= idx.NumLayers() {
		t.Fatalf("probed all %d layers; early termination failed", stats.LayersProbed)
	}
}

func TestSkip(t *testing.T) {
	dim := 8
	data := randomData(500, dim, 5)
	idx, err := New(dim, data, DefaultConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	q := make([]float64, dim)
	q[0] = 1
	full, _ := idx.TopK(q, 3, nil)
	if len(full) == 0 {
		t.Fatal("no results")
	}
	banned := full[0].ID
	res, _ := idx.TopK(q, 3, func(id int32) bool { return id == banned })
	for _, r := range res {
		if r.ID == banned {
			t.Fatalf("skipped id %d returned", banned)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if _, err := New(0, nil, DefaultConfig()); err == nil {
		t.Fatal("dim 0 accepted")
	}
	if _, err := New(4, []float64{1}, DefaultConfig()); err == nil {
		t.Fatal("ragged data accepted")
	}
	idx, err := New(4, nil, DefaultConfig())
	if err != nil {
		t.Fatalf("empty data rejected: %v", err)
	}
	if res, _ := idx.TopK([]float64{1, 0, 0, 0}, 5, nil); len(res) != 0 {
		t.Fatalf("empty index returned %d results", len(res))
	}
	// All-zero vectors must not divide by zero.
	zeros := make([]float64, 10*4)
	idx, err = New(4, zeros, DefaultConfig())
	if err != nil {
		t.Fatalf("zero data rejected: %v", err)
	}
	res, _ := idx.TopK([]float64{1, 1, 1, 1}, 3, nil)
	if len(res) != 3 {
		t.Fatalf("got %d results over zero vectors, want 3", len(res))
	}
	for _, r := range res {
		if r.Score != 0 {
			t.Fatalf("score %v over zero vectors, want 0", r.Score)
		}
	}
}
