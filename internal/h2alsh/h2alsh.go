// Package h2alsh implements the H2-ALSH baseline (Huang, Ma, Feng, Fang,
// Tung; KDD 2018): homocentric-hypersphere partitioning plus an asymmetric
// query-normalized transform (QNF) that reduces maximum inner-product search
// to angular nearest-neighbor search, answered per layer with
// random-projection LSH tables.
//
// As the paper under reproduction stresses, H2-ALSH works over collaborative
// filtering factors of a single relationship type and cannot index a
// heterogeneous knowledge graph; it is compared only on the Movie and Amazon
// "likes" workloads. Structurally it keeps the property the comparison turns
// on: flat hash buckets with no hierarchy, so query cost grows near-linearly
// with data size while the cracking R-tree grows logarithmically.
package h2alsh

import (
	"container/heap"
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Config holds H2-ALSH parameters.
type Config struct {
	// LayerRatio b in (0,1): a norm layer spans max-norm M_j down to
	// b * M_j; smaller values mean fewer, thicker layers.
	LayerRatio float64
	// Tables is the number of independent LSH tables per layer (L).
	Tables int
	// HashBits is the number of concatenated random projections per table
	// key (K).
	HashBits int
	// BucketWidth is the quantization width w of each projection.
	BucketWidth float64
	// BruteForceBelow skips hashing for layers smaller than this and scans
	// them directly.
	BruteForceBelow int
	// MinCandidatesPerK: if the LSH tables of a probed layer yield fewer
	// than MinCandidatesPerK*k candidates, the layer is scanned instead —
	// the collision-counting safeguard that keeps recall comparable to the
	// original implementation on hard (near-isotropic) data.
	MinCandidatesPerK int
	Seed              int64
}

// DefaultConfig returns the configuration used in the experiments.
func DefaultConfig() Config {
	// MinCandidatesPerK is calibrated so that recall@10 against the exact
	// MIPS scan lands in the >= 0.94 band the paper reports for H2-ALSH
	// (Figs. 6/8); comparing the methods at different accuracy regimes
	// would make the latency comparison meaningless.
	return Config{
		LayerRatio:        0.7,
		Tables:            16,
		HashBits:          6,
		BucketWidth:       2.0,
		BruteForceBelow:   64,
		MinCandidatesPerK: 320,
		Seed:              31,
	}
}

// Index is an H2-ALSH index over n item vectors of dimension d.
type Index struct {
	dim    int
	n      int
	data   []float64 // row-major, stride dim
	norms  []float64
	layers []*layer
	cfg    Config
}

// layer is one homocentric hypersphere shell: items whose norms lie in
// (b*maxNorm, maxNorm], QNF-transformed to unit vectors in dim+1 dimensions
// and hashed into Tables flat LSH tables.
type layer struct {
	maxNorm float64
	ids     []int32
	unit    []float64 // QNF-transformed vectors, stride dim+1
	tables  []map[uint64][]int32
	projs   [][]float64 // Tables x (HashBits x (dim+1)) projection rows
	offs    [][]float64 // Tables x HashBits random offsets in [0, w)
	brute   bool
}

// New builds the index over row-major item vectors.
func New(dim int, data []float64, cfg Config) (*Index, error) {
	if dim <= 0 {
		return nil, errors.New("h2alsh: non-positive dimension")
	}
	if len(data)%dim != 0 {
		return nil, errors.New("h2alsh: data length is not a multiple of dim")
	}
	if cfg.LayerRatio <= 0 || cfg.LayerRatio >= 1 {
		cfg.LayerRatio = DefaultConfig().LayerRatio
	}
	if cfg.Tables <= 0 {
		cfg.Tables = DefaultConfig().Tables
	}
	if cfg.HashBits <= 0 || cfg.HashBits > 62 {
		cfg.HashBits = DefaultConfig().HashBits
	}
	if cfg.BucketWidth <= 0 {
		cfg.BucketWidth = DefaultConfig().BucketWidth
	}

	idx := &Index{dim: dim, n: len(data) / dim, data: data, cfg: cfg}
	idx.norms = make([]float64, idx.n)
	order := make([]int32, idx.n)
	for i := 0; i < idx.n; i++ {
		order[i] = int32(i)
		var s float64
		for j := 0; j < dim; j++ {
			v := data[i*dim+j]
			s += v * v
		}
		idx.norms[i] = math.Sqrt(s)
	}
	sort.Slice(order, func(a, b int) bool { return idx.norms[order[a]] > idx.norms[order[b]] })

	rng := rand.New(rand.NewSource(cfg.Seed))
	for start := 0; start < idx.n; {
		maxNorm := idx.norms[order[start]]
		if maxNorm == 0 {
			// Zero vectors: all inner products are 0; one terminal layer.
			idx.layers = append(idx.layers, &layer{maxNorm: 0, ids: order[start:], brute: true})
			break
		}
		end := start
		floor := maxNorm * cfg.LayerRatio
		for end < idx.n && idx.norms[order[end]] > floor {
			end++
		}
		l := &layer{maxNorm: maxNorm, ids: append([]int32(nil), order[start:end]...)}
		idx.buildLayer(l, rng)
		idx.layers = append(idx.layers, l)
		start = end
	}
	return idx, nil
}

func (idx *Index) buildLayer(l *layer, rng *rand.Rand) {
	dim := idx.dim
	qd := dim + 1
	l.unit = make([]float64, len(l.ids)*qd)
	for i, id := range l.ids {
		row := l.unit[i*qd : (i+1)*qd]
		scale := 1 / l.maxNorm
		var s float64
		for j := 0; j < dim; j++ {
			v := idx.data[int(id)*dim+j] * scale
			row[j] = v
			s += v * v
		}
		// QNF: append sqrt(1 - ||x/M||^2), making every row a unit vector.
		rest := 1 - s
		if rest < 0 {
			rest = 0
		}
		row[dim] = math.Sqrt(rest)
	}
	if len(l.ids) < idx.cfg.BruteForceBelow {
		l.brute = true
		return
	}
	l.tables = make([]map[uint64][]int32, idx.cfg.Tables)
	l.projs = make([][]float64, idx.cfg.Tables)
	l.offs = make([][]float64, idx.cfg.Tables)
	for t := 0; t < idx.cfg.Tables; t++ {
		proj := make([]float64, idx.cfg.HashBits*qd)
		for i := range proj {
			proj[i] = rng.NormFloat64()
		}
		off := make([]float64, idx.cfg.HashBits)
		for i := range off {
			off[i] = rng.Float64() * idx.cfg.BucketWidth
		}
		l.projs[t] = proj
		l.offs[t] = off
		table := make(map[uint64][]int32, len(l.ids))
		for i, id := range l.ids {
			key := hashKey(l.unit[i*qd:(i+1)*qd], proj, off, idx.cfg.HashBits, idx.cfg.BucketWidth)
			table[key] = append(table[key], id)
		}
		l.tables[t] = table
	}
}

// hashKey concatenates HashBits quantized random projections into a table
// key. Each projection contributes its bucket index modulo a small range,
// packed into 64 bits.
func hashKey(v, proj, off []float64, bits int, w float64) uint64 {
	qd := len(v)
	var key uint64
	for b := 0; b < bits; b++ {
		row := proj[b*qd : (b+1)*qd]
		dot := off[b]
		for j, x := range v {
			dot += row[j] * x
		}
		bucket := int64(math.Floor(dot / w))
		key = key<<7 | uint64(bucket&0x7f)
	}
	return key
}

// Result is one top-k MIPS answer.
type Result struct {
	ID    int32
	Score float64 // inner product with the query
}

// QueryStats reports per-query work, for the evaluation's cost analysis.
type QueryStats struct {
	LayersProbed     int
	CandidatesScored int
}

// TopK returns the k items with the largest inner product against q,
// skipping items for which skip returns true. Layers are probed in
// decreasing max-norm order and probing stops as soon as the running kth
// best score is at least maxNorm * ||q||, the layer's inner-product upper
// bound.
func (idx *Index) TopK(q []float64, k int, skip func(int32) bool) ([]Result, QueryStats) {
	var stats QueryStats
	if k <= 0 || idx.n == 0 {
		return nil, stats
	}
	qNorm := 0.0
	for _, v := range q {
		qNorm += v * v
	}
	qNorm = math.Sqrt(qNorm)

	// Asymmetric query transform: unit-normalize and append a zero.
	qd := idx.dim + 1
	qt := make([]float64, qd)
	if qNorm > 0 {
		for j, v := range q {
			qt[j] = v / qNorm
		}
	}

	res := &resultHeap{} // min-heap of current top-k by score
	seen := make(map[int32]bool)
	score := func(id int32) {
		if seen[id] || (skip != nil && skip(id)) {
			return
		}
		seen[id] = true
		stats.CandidatesScored++
		var dot float64
		base := int(id) * idx.dim
		for j, v := range q {
			dot += idx.data[base+j] * v
		}
		if res.Len() < k {
			heap.Push(res, Result{ID: id, Score: dot})
		} else if dot > (*res)[0].Score {
			(*res)[0] = Result{ID: id, Score: dot}
			heap.Fix(res, 0)
		}
	}

	for _, l := range idx.layers {
		if res.Len() >= k && (*res)[0].Score >= l.maxNorm*qNorm {
			break // no deeper layer can improve the top-k
		}
		stats.LayersProbed++
		if l.brute || l.tables == nil {
			for _, id := range l.ids {
				score(id)
			}
			continue
		}
		before := stats.CandidatesScored
		for t, table := range l.tables {
			key := hashKey(qt, l.projs[t], l.offs[t], idx.cfg.HashBits, idx.cfg.BucketWidth)
			for _, id := range table[key] {
				score(id)
			}
		}
		// The candidate floor uses max(k, 10) so that small k does not
		// collapse the budget: the original implementation sizes its
		// candidate sets by data, not by k, which is why the paper sees
		// only a slight k effect (Fig. 7).
		kEff := k
		if kEff < 10 {
			kEff = 10
		}
		minCand := idx.cfg.MinCandidatesPerK * kEff
		if minCand <= 0 {
			minCand = 1
		}
		if stats.CandidatesScored-before < minCand {
			// Too few bucket collisions for a trustworthy answer: scan the
			// layer (the collision-counting fallback of the original).
			for _, id := range l.ids {
				score(id)
			}
		}
	}

	out := make([]Result, res.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(res).(Result)
	}
	return out, stats
}

// NumLayers returns the number of norm layers (for introspection/tests).
func (idx *Index) NumLayers() int { return len(idx.layers) }

type resultHeap []Result

func (h resultHeap) Len() int            { return len(h) }
func (h resultHeap) Less(i, j int) bool  { return h[i].Score < h[j].Score }
func (h resultHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *resultHeap) Push(x interface{}) { *h = append(*h, x.(Result)) }
func (h *resultHeap) Pop() interface{} {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}
