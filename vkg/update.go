package vkg

import "vkgraph/internal/core"

// This file exposes dynamic updates — the paper's stated future work
// (Section VIII) — through the public API: facts and entities can be added
// to a live virtual knowledge graph without retraining the embedding or
// rebuilding the index.

// Fact describes one edge of a new entity for InsertEntity.
type Fact struct {
	Rel   RelationID
	Other EntityID
	// NewIsHead places the new entity at the head of the fact
	// (new, Rel, Other); otherwise the fact is (Other, Rel, new).
	NewIsHead bool
}

// AddFact records a new fact (h, r, t) on the live graph. The embedding is
// untouched — the paper's locality intuition: existing soft constraints
// still hold — but the fact takes effect immediately: predictive queries
// answer over E' only, so (h, r, t) stops being predicted and its slot goes
// to the next-best entity.
func (v *VKG) AddFact(h EntityID, r RelationID, t EntityID) error {
	return v.eng.AddFact(h, r, t)
}

// InsertEntity adds a new entity with initial facts (at least one) and
// optional attribute values, and returns its id. The entity's embedding is
// solved locally from its facts' translation constraints; its index point
// is inserted incrementally into the cracked structure (a deferred split
// absorbs it until a query cares). The new entity is immediately queryable
// and immediately appears among other entities' predictions.
func (v *VKG) InsertEntity(name, typ string, facts []Fact, attrs map[string]float64) (EntityID, error) {
	cf := make([]core.Fact, len(facts))
	for i, f := range facts {
		cf[i] = core.Fact{Rel: f.Rel, Other: f.Other, NewIsHead: f.NewIsHead}
	}
	return v.eng.InsertEntity(name, typ, cf, attrs)
}

// SetEntityAttr sets attribute attr of entity id on the live graph,
// creating the attribute column if the graph has never seen the name. A
// new attribute is immediately aggregatable — no rebuild or restart — and
// with a WAL armed the write survives restarts like any other mutation.
func (v *VKG) SetEntityAttr(attr string, id EntityID, value float64) error {
	return v.eng.SetAttr(attr, id, value)
}
