package vkg

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"vkgraph/internal/atomicfile"
	"vkgraph/internal/faultio"
)

func builtVKG(t *testing.T, extra ...Option) (*VKG, RelationID) {
	t.Helper()
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts(extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	amy, _ := g.EntityByName("user0")
	for i := 0; i < 4; i++ {
		if _, err := v.TopKTails(amy, ratesHigh, 5); err != nil {
			t.Fatal(err)
		}
	}
	return v, ratesHigh
}

func TestLoadTypedErrors(t *testing.T) {
	v, _ := builtVKG(t)
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	if _, err := Load(bytes.NewReader([]byte("not a snapshot at all"))); !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("garbage: got %v, want errors.Is ErrCorruptSnapshot", err)
	}
	if _, err := Load(bytes.NewReader(snap[:40])); !errors.Is(err, ErrCorruptSnapshot) {
		t.Errorf("truncated: got %v, want errors.Is ErrCorruptSnapshot", err)
	}
	future := append([]byte(nil), snap...)
	binary.LittleEndian.PutUint16(future[8:], 0x7FFF) // bump the format version
	if _, err := Load(bytes.NewReader(future)); !errors.Is(err, ErrVersion) {
		t.Errorf("future version: got %v, want errors.Is ErrVersion", err)
	}
}

// A save that dies mid-write — torn write, full disk, failed sync or rename —
// must leave the previous on-disk snapshot untouched and loadable.
func TestTornSaveKeepsPreviousSnapshot(t *testing.T) {
	v, ratesHigh := builtVKG(t)
	path := filepath.Join(t.TempDir(), "v.vkg")
	if err := v.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	entitiesBefore := v.Graph().NumEntities()
	amy, _ := v.Graph().EntityByName("user0")

	// Change the VKG so a successful re-save would write different bytes.
	if _, err := v.InsertEntity("brand-new", "restaurant",
		[]Fact{{Rel: ratesHigh, Other: amy}}, nil); err != nil {
		t.Fatal(err)
	}

	faults := []*faultio.FS{
		{WriteN: 64, WriteErr: faultio.ErrInjected}, // torn write
		{SyncErr: faultio.ErrInjected},              // fsync failure
		{RenameErr: faultio.ErrInjected},            // rename failure
		{CloseErr: faultio.ErrInjected},             // close failure
	}
	for i, fs := range faults {
		if err := atomicfile.Write(fs, path, v.Save); err == nil {
			t.Fatalf("fault %d: save succeeded despite the injected failure", i)
		}
		if n := len(fs.Renamed()); n != 0 {
			t.Fatalf("fault %d: %d renames reached the destination", i, n)
		}
		for _, tmp := range fs.Created() {
			if _, err := os.Stat(tmp); !os.IsNotExist(err) {
				t.Fatalf("fault %d: temp file %s left behind", i, tmp)
			}
		}
		loaded, err := LoadFile(path)
		if err != nil {
			t.Fatalf("fault %d: previous snapshot no longer loads: %v", i, err)
		}
		if loaded.Graph().NumEntities() != entitiesBefore {
			t.Fatalf("fault %d: previous snapshot changed: %d entities, want %d",
				i, loaded.Graph().NumEntities(), entitiesBefore)
		}
	}

	// And with no fault armed the same path replaces the snapshot.
	if err := atomicfile.Write(&faultio.FS{}, path, v.Save); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Graph().NumEntities() != entitiesBefore+1 {
		t.Fatalf("clean re-save not visible: %d entities, want %d",
			loaded.Graph().NumEntities(), entitiesBefore+1)
	}
}

// Load must hand back the index mode the snapshot was built with — a loaded
// VKG that silently reverts to the default mode drops the bulk/top-k-split
// configuration the user chose.
func TestLoadRestoresIndexMode(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want IndexMode
	}{
		{"crack", nil, ModeCrack},
		{"crack top-k splits", []Option{WithSplitChoices(3)}, ModeCrackTopK},
		{"bulk", []Option{WithIndexMode(ModeBulk)}, ModeBulk},
	}
	for _, c := range cases {
		v, _ := builtVKG(t, c.opts...)
		if v.Mode() != c.want {
			t.Fatalf("%s: built VKG has mode %v, want %v", c.name, v.Mode(), c.want)
		}
		var buf bytes.Buffer
		if err := v.Save(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.Mode() != c.want {
			t.Errorf("%s: loaded VKG has mode %v, want %v", c.name, loaded.Mode(), c.want)
		}
		if loaded.IndexRebuilt() {
			t.Errorf("%s: clean load reported a rebuilt index", c.name)
		}
	}
}

// Damage confined to the index section degrades gracefully at the public
// API too: Load succeeds, IndexRebuilt reports it, queries still answer.
func TestLoadDegradedIndexSection(t *testing.T) {
	v, ratesHigh := builtVKG(t)
	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	snap[len(snap)-1] ^= 0x01 // the index section is written last

	loaded, err := Load(bytes.NewReader(snap))
	if err != nil {
		t.Fatalf("Load failed instead of degrading: %v", err)
	}
	if !loaded.IndexRebuilt() {
		t.Fatal("degraded load not reported by IndexRebuilt")
	}
	amy, _ := loaded.Graph().EntityByName("user0")
	res, err := loaded.TopKTails(amy, ratesHigh, 5)
	if err != nil {
		t.Fatalf("query on degraded VKG: %v", err)
	}
	if len(res.Predictions) != 5 {
		t.Fatalf("degraded VKG returned %d predictions, want 5", len(res.Predictions))
	}
}
