package vkg

import (
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
)

// The serving-layer contract: any mix of top-k queries, aggregate queries,
// fact insertions, entity insertions, snapshots, and stats calls may run
// concurrently. Run under -race this test is the proof; without -race it
// still exercises lost-update and torn-answer failure modes.
func TestConcurrentQueriesAndUpdates(t *testing.T) {
	g, ratesHigh, frequents := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var users, restaurants []EntityID
	for i := 0; i < 20; i++ {
		u, _ := g.EntityByName(fmt.Sprintf("user%d", i))
		users = append(users, u)
		r, _ := g.EntityByName(fmt.Sprintf("restaurant%d", i))
		restaurants = append(restaurants, r)
	}

	const workers = 8
	iters := 40
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < iters; i++ {
				u := users[rng.Intn(len(users))]
				r := restaurants[rng.Intn(len(restaurants))]
				switch rng.Intn(8) {
				case 0, 1:
					res, err := v.TopKTails(u, ratesHigh, 5)
					if err != nil {
						errs <- fmt.Errorf("TopKTails: %w", err)
						return
					}
					for _, p := range res.Predictions {
						if p.Name == "" {
							errs <- fmt.Errorf("TopKTails returned a nameless prediction")
							return
						}
					}
				case 2:
					if _, err := v.TopKHeads(r, ratesHigh, 5); err != nil {
						errs <- fmt.Errorf("TopKHeads: %w", err)
						return
					}
				case 3:
					if _, err := v.AggregateHeads(r, ratesHigh,
						AggSpec{Kind: Avg, Attr: "age", MaxAccess: 8}); err != nil {
						errs <- fmt.Errorf("AggregateHeads: %w", err)
						return
					}
				case 4:
					if err := v.AddFact(u, frequents, r); err != nil {
						errs <- fmt.Errorf("AddFact: %w", err)
						return
					}
				case 5:
					name := fmt.Sprintf("stress-%d-%d", w, i)
					if _, err := v.InsertEntity(name, "restaurant",
						[]Fact{{Rel: ratesHigh, Other: u}},
						map[string]float64{"age": 30}); err != nil {
						errs <- fmt.Errorf("InsertEntity: %w", err)
						return
					}
				case 6:
					if err := v.Save(io.Discard); err != nil {
						errs <- fmt.Errorf("Save: %w", err)
						return
					}
				case 7:
					if s := v.IndexStats(); s.TotalNodes < 1 {
						errs <- fmt.Errorf("IndexStats saw an empty index")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The engine must still be coherent after the storm.
	if err := v.Engine().CheckInvariants(); err != nil {
		t.Fatalf("index invariants after concurrent workload: %v", err)
	}
	res, err := v.TopKTails(users[0], ratesHigh, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 5 {
		t.Fatalf("got %d predictions after concurrent workload", len(res.Predictions))
	}
}
