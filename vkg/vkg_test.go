package vkg

import (
	"fmt"
	"math/rand"
	"testing"

	"vkgraph/internal/kg/kggen"
)

// buildTestGraph builds a small restaurant-style graph (the paper's
// Figure 1 scenario) with learnable structure.
func buildTestGraph(t *testing.T) (*Graph, RelationID, RelationID) {
	t.Helper()
	g := NewGraph()
	ratesHigh := g.AddRelation("rates-high")
	frequents := g.AddRelation("frequents")

	rng := rand.New(rand.NewSource(1))
	const styles = 4
	var restaurants, groceries []EntityID
	for i := 0; i < 60; i++ {
		restaurants = append(restaurants, g.AddEntity(fmt.Sprintf("restaurant%d", i), "restaurant"))
	}
	for i := 0; i < 12; i++ {
		groceries = append(groceries, g.AddEntity(fmt.Sprintf("grocery%d", i), "grocery"))
	}
	for i := 0; i < 80; i++ {
		u := g.AddEntity(fmt.Sprintf("user%d", i), "user")
		g.SetAttr("age", u, float64(20+rng.Intn(40)))
		style := i % styles
		for j := 0; j < 6; j++ {
			ri := (style + j*styles) % len(restaurants)
			if err := g.AddTriple(u, ratesHigh, restaurants[ri]); err != nil {
				t.Fatal(err)
			}
		}
		if err := g.AddTriple(u, frequents, groceries[style%len(groceries)]); err != nil {
			t.Fatal(err)
		}
	}
	return g, ratesHigh, frequents
}

func fastOpts(extra ...Option) []Option {
	opts := []Option{
		WithSeed(42),
		WithEmbedding(EmbeddingParams{Dim: 16, Epochs: 15}),
		WithAttributes("age"),
	}
	return append(opts, extra...)
}

func TestBuildAndTopK(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	amy, _ := g.EntityByName("user0")
	res, err := v.TopKTails(amy, ratesHigh, 5)
	if err != nil {
		t.Fatalf("TopKTails: %v", err)
	}
	if len(res.Predictions) != 5 {
		t.Fatalf("got %d predictions", len(res.Predictions))
	}
	for _, p := range res.Predictions {
		if g.HasEdge(amy, ratesHigh, p.Entity) {
			t.Fatalf("predicted a known edge to %s", p.Name)
		}
		if p.Name == "" {
			t.Fatal("prediction missing name")
		}
		if p.Prob < 0 || p.Prob > 1 {
			t.Fatalf("probability %v out of range", p.Prob)
		}
	}
	if res.RecallBound < 0 || res.RecallBound > 1 {
		t.Fatalf("recall bound %v", res.RecallBound)
	}
	if len(v.TrainingLosses()) != 15 {
		t.Fatalf("got %d training losses", len(v.TrainingLosses()))
	}
}

func TestAllIndexModesAgree(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	truth, err := Build(g, fastOpts(WithIndexMode(ModeNoIndex))...)
	if err != nil {
		t.Fatalf("Build noindex: %v", err)
	}
	amy, _ := g.EntityByName("user3")
	want, err := truth.TopKTails(amy, ratesHigh, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := map[EntityID]bool{}
	for _, p := range want.Predictions {
		wantSet[p.Entity] = true
	}

	for _, mode := range []IndexMode{ModeCrack, ModeCrackTopK, ModeBulk} {
		opts := fastOpts(WithIndexMode(mode))
		if mode == ModeCrackTopK {
			opts = append(opts, WithSplitChoices(2))
		}
		v, err := Build(g, opts...)
		if err != nil {
			t.Fatalf("Build mode %d: %v", mode, err)
		}
		got, err := v.TopKTails(amy, ratesHigh, 5)
		if err != nil {
			t.Fatalf("TopKTails mode %d: %v", mode, err)
		}
		hits := 0
		for _, p := range got.Predictions {
			if wantSet[p.Entity] {
				hits++
			}
		}
		if hits < 4 {
			t.Fatalf("mode %d agrees on only %d of 5 predictions", mode, hits)
		}
	}
}

func TestTopKHeads(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	r0, _ := g.EntityByName("restaurant0")
	res, err := v.TopKHeads(r0, ratesHigh, 5)
	if err != nil {
		t.Fatalf("TopKHeads: %v", err)
	}
	for _, p := range res.Predictions {
		if g.HasEdge(p.Entity, ratesHigh, r0) {
			t.Fatalf("predicted known head %s", p.Name)
		}
	}
}

func TestAggregates(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := g.EntityByName("restaurant1")

	// Q2 of the paper: average age of people who would like restaurant1.
	agg, err := v.AggregateHeads(r1, ratesHigh, AggSpec{Kind: Avg, Attr: "age"})
	if err != nil {
		t.Fatalf("AggregateHeads: %v", err)
	}
	if agg.Value < 20 || agg.Value > 60 {
		t.Fatalf("average age %v outside the generated range", agg.Value)
	}
	if agg.BallSize < agg.Accessed {
		t.Fatalf("b=%d < a=%d", agg.BallSize, agg.Accessed)
	}
	if agg.ErrorProbability(10) > agg.ErrorProbability(0.001) {
		t.Fatal("error probability not monotone")
	}

	cnt, err := v.AggregateHeads(r1, ratesHigh, AggSpec{Kind: Count})
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if cnt.Value < 0 {
		t.Fatalf("negative count %v", cnt.Value)
	}

	mx, err := v.AggregateHeads(r1, ratesHigh, AggSpec{Kind: Max, Attr: "age", MaxAccess: 10})
	if err != nil {
		t.Fatalf("Max: %v", err)
	}
	mn, err := v.AggregateHeads(r1, ratesHigh, AggSpec{Kind: Min, Attr: "age", MaxAccess: 10})
	if err != nil {
		t.Fatalf("Min: %v", err)
	}
	if mx.Value < mn.Value {
		t.Fatalf("MAX %v < MIN %v", mx.Value, mn.Value)
	}

	if _, err := v.AggregateHeads(r1, ratesHigh, AggSpec{Kind: AggKind(99)}); err == nil {
		t.Fatal("unknown aggregate kind accepted")
	}
	if _, err := v.AggregateHeads(r1, ratesHigh, AggSpec{Kind: Sum, Attr: "unknown"}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestIndexStatsEvolve(t *testing.T) {
	// A bigger instance than the other tests: cracking only splits when a
	// query region covers part of an element, which needs enough points
	// for query balls not to swallow the whole space.
	g := WrapGraph(kggen.Movie(kggen.TinyMovieConfig()))
	ratesHigh, _ := g.RelationByName("likes")
	v, err := Build(g, WithSeed(42), WithEmbedding(EmbeddingParams{Dim: 16, Epochs: 10}))
	if err != nil {
		t.Fatal(err)
	}
	before := v.IndexStats()
	if before.TotalNodes != 1 || before.BinarySplits != 0 {
		t.Fatalf("fresh cracking index: %+v", before)
	}
	for i := 0; i < 10; i++ {
		u, ok := g.EntityByName(fmt.Sprintf("user%d", i))
		if !ok {
			t.Fatalf("missing user%d", i)
		}
		if _, err := v.TopKTails(u, ratesHigh, 5); err != nil {
			t.Fatal(err)
		}
	}
	after := v.IndexStats()
	if after.TotalNodes <= before.TotalNodes {
		t.Fatalf("index did not grow: %+v", after)
	}
	if after.SizeBytes <= 0 || after.Height < 0 {
		t.Fatalf("bad stats: %+v", after)
	}
}

func TestPretrainedModelReuse(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	base, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Build(g, WithModelFrom(base), WithAttributes("age"), WithSeed(42))
	if err != nil {
		t.Fatalf("Build with pretrained: %v", err)
	}
	if len(v2.TrainingLosses()) != 0 {
		t.Fatal("pretrained build reports training losses")
	}
	amy, _ := g.EntityByName("user0")
	a, _ := base.TopKTails(amy, ratesHigh, 5)
	b, _ := v2.TopKTails(amy, ratesHigh, 5)
	for i := range a.Predictions {
		if a.Predictions[i].Entity != b.Predictions[i].Entity {
			t.Fatal("pretrained model gives different answers")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	empty := NewGraph()
	if _, err := Build(empty); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestWrapGraph(t *testing.T) {
	inner := kggen.Movie(kggen.TinyMovieConfig())
	g := WrapGraph(inner)
	if g.NumEntities() != inner.NumEntities() {
		t.Fatal("WrapGraph lost entities")
	}
	if g.Internal() != inner {
		t.Fatal("Internal() does not round-trip")
	}
	v, err := Build(g, WithSeed(7), WithEmbedding(EmbeddingParams{Dim: 16, Epochs: 5}), WithAttributes("year"))
	if err != nil {
		t.Fatalf("Build over wrapped graph: %v", err)
	}
	likes, _ := g.RelationByName("likes")
	u, _ := g.EntityByName("user0")
	if _, err := v.TopKTails(u, likes, 3); err != nil {
		t.Fatalf("query over wrapped graph: %v", err)
	}
}

func TestL1Embedding(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts(WithEmbedding(EmbeddingParams{Dim: 16, Epochs: 10, L1: true}))...)
	if err != nil {
		t.Fatalf("Build L1: %v", err)
	}
	amy, _ := g.EntityByName("user0")
	res, err := v.TopKTails(amy, ratesHigh, 3)
	if err != nil || len(res.Predictions) != 3 {
		t.Fatalf("L1 query: %v, %d predictions", err, len(res.Predictions))
	}
}
