package vkg

import (
	"path/filepath"
	"testing"
)

// End-to-end WAL lifecycle through the public API: arm, mutate, "crash"
// (no final save), load with replay, and observe it all in Metrics.
func TestWALEndToEnd(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "wal.vkg")
	if err := v.EnableWAL(snap, WALConfig{Sync: WALSyncOff}); err != nil {
		t.Fatalf("EnableWAL: %v", err)
	}

	amy, _ := g.EntityByName("user0")
	for i := 0; i < 8; i++ {
		if _, err := v.TopKTails(amy, ratesHigh, 5); err != nil {
			t.Fatal(err)
		}
	}
	res, err := v.TopKTails(amy, ratesHigh, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.AddFact(amy, ratesHigh, res.Predictions[0].Entity); err != nil {
		t.Fatal(err)
	}
	// A dynamic attribute written through the public API must survive the
	// crash like everything else.
	if err := v.SetEntityAttr("stars", res.Predictions[1].Entity, 4.5); err != nil {
		t.Fatalf("SetEntityAttr: %v", err)
	}
	liveAgg, err := v.AggregateTails(amy, ratesHigh, AggSpec{Kind: Max, Attr: "stars"})
	if err != nil {
		t.Fatalf("aggregate over dynamic attr: %v", err)
	}
	want, err := v.TopKTails(amy, ratesHigh, 5)
	if err != nil {
		t.Fatal(err)
	}
	stats := v.WALStats()
	if !stats.Enabled || stats.AppendedRecords == 0 {
		t.Fatalf("WAL not recording: %+v", stats)
	}
	m := v.Metrics()
	if m.WAL.AppendedRecords != stats.AppendedRecords {
		t.Fatalf("Metrics WAL view diverged: %d vs %d", m.WAL.AppendedRecords, stats.AppendedRecords)
	}
	liveNodes := v.IndexStats().TotalNodes
	if err := v.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadFileWAL(snap, WALConfig{Sync: WALSyncOff})
	if err != nil {
		t.Fatalf("LoadFileWAL: %v", err)
	}
	defer loaded.CloseWAL()
	rs := loaded.WALStats()
	if rs.ReplayedRecords != stats.AppendedRecords {
		t.Fatalf("replayed %d records, want %d", rs.ReplayedRecords, stats.AppendedRecords)
	}
	if got := loaded.IndexStats().TotalNodes; got != liveNodes {
		t.Fatalf("replayed index has %d nodes, live had %d", got, liveNodes)
	}
	got, err := loaded.TopKTails(amy, ratesHigh, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Predictions {
		if got.Predictions[i].Entity != want.Predictions[i].Entity {
			t.Fatalf("answers diverged after replay: %v vs %v", got.Predictions, want.Predictions)
		}
	}
	agg, err := loaded.AggregateTails(amy, ratesHigh, AggSpec{Kind: Max, Attr: "stars"})
	if err != nil {
		t.Fatalf("dynamic attr lost across restart: %v", err)
	}
	if agg.Value != liveAgg.Value {
		t.Fatalf("aggregate diverged: %v vs %v", agg.Value, liveAgg.Value)
	}
}

// SaveFile on a WAL-armed VKG rotates the log; the snapshot alone carries
// everything up to the save.
func TestWALSaveFileRotates(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "wal.vkg")
	if err := v.EnableWAL(snap, WALConfig{Sync: WALSyncOff}); err != nil {
		t.Fatal(err)
	}
	amy, _ := g.EntityByName("user0")
	for i := 0; i < 6; i++ {
		if _, err := v.TopKTails(amy, ratesHigh, 5); err != nil {
			t.Fatal(err)
		}
	}
	gen := v.WALStats().Generation
	if err := v.SaveFile(snap); err != nil {
		t.Fatal(err)
	}
	after := v.WALStats()
	if after.Generation != gen+1 {
		t.Fatalf("generation %d after SaveFile, want %d", after.Generation, gen+1)
	}
	if err := v.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFileWAL(snap, WALConfig{Sync: WALSyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.CloseWAL()
	if rs := loaded.WALStats(); rs.ReplayedRecords != 0 {
		t.Fatalf("rotated log replayed %d records, want 0", rs.ReplayedRecords)
	}
	if _, err := loaded.TopKTails(amy, ratesHigh, 5); err != nil {
		t.Fatal(err)
	}
}
