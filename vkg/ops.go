package vkg

import (
	"context"
	"net"
	"net/http"
	"time"

	"vkgraph/internal/obs"
)

// OpsHandler returns the ops HTTP handler for this VKG:
//
//	/metrics      Prometheus text exposition of every engine counter
//	              (OpenMetrics with trace-id exemplars when Accept asks)
//	/debug/vars   expvar JSON (the registry is published under "vkg")
//	/debug/pprof/ the standard pprof profile handlers
//	/slowlog      recent slow queries with stage breakdowns, as JSON
//	/traces       retained query traces (JSON list; /traces/<id> for one)
//
// Mount it on an existing server, or use ServeOps to run a dedicated
// listener.
func (v *VKG) OpsHandler() http.Handler {
	return obs.Handler(v.eng.Registry(), v.eng.SlowLog(), v.eng.Traces())
}

// OpsServer is a running ops HTTP listener (see ServeOps).
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the listener's address — useful with ":0" to discover the
// chosen port.
func (s *OpsServer) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down, waiting briefly for in-flight scrapes.
func (s *OpsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}

// ServeOps starts an ops HTTP server on addr (e.g. "localhost:8372" or
// ":0" for an ephemeral port) serving OpsHandler and returns once the
// listener is accepting. The server runs until Close. Serving ops is
// optional and has no effect on query cost: the hot-path counters are
// always-on atomics, and the registry is only read at scrape time.
//
// The server is hardened against slow or hostile clients: header and
// body reads are bounded, as is header size. There is deliberately no
// WriteTimeout — pprof profile and trace responses stream for as long as
// the client asked to sample.
func (v *VKG) ServeOps(addr string) (*OpsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           v.OpsHandler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	go func() { _ = srv.Serve(ln) }()
	return &OpsServer{ln: ln, srv: srv}, nil
}
