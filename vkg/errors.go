package vkg

import "vkgraph/internal/core"

// Typed sentinel errors for query validation. Every error returned by a
// query or update method that rejects an unknown id or attribute wraps one
// of these, so callers classify failures with errors.Is instead of
// string-matching:
//
//	if _, err := v.TopKTails(h, r, 5); errors.Is(err, vkg.ErrUnknownEntity) {
//		// h is not an entity of this graph
//	}
//
// (The snapshot errors ErrCorruptSnapshot and ErrVersion live in persist.go.)
var (
	// ErrUnknownEntity reports an entity id outside the graph.
	ErrUnknownEntity = core.ErrUnknownEntity
	// ErrUnknownRelation reports a relation id outside the graph.
	ErrUnknownRelation = core.ErrUnknownRelation
	// ErrUnknownAttribute reports an aggregate over an attribute that was
	// not registered via WithAttributes (or an aggregate missing one).
	ErrUnknownAttribute = core.ErrUnknownAttribute
)
