package vkg

import (
	"context"
	"errors"

	"vkgraph/internal/core"
)

// Typed sentinel errors for query validation. Every error returned by a
// query or update method that rejects an unknown id or attribute wraps one
// of these, so callers classify failures with errors.Is instead of
// string-matching:
//
//	if _, err := v.TopKTails(h, r, 5); errors.Is(err, vkg.ErrUnknownEntity) {
//		// h is not an entity of this graph
//	}
//
// (The snapshot errors ErrCorruptSnapshot and ErrVersion live in persist.go.)
var (
	// ErrUnknownEntity reports an entity id outside the graph.
	ErrUnknownEntity = core.ErrUnknownEntity
	// ErrUnknownRelation reports a relation id outside the graph.
	ErrUnknownRelation = core.ErrUnknownRelation
	// ErrUnknownAttribute reports an aggregate over an attribute that was
	// not registered via WithAttributes (or an aggregate missing one).
	ErrUnknownAttribute = core.ErrUnknownAttribute
)

// Serving-layer sentinels. The vkg-serve admission controller and deadline
// plumbing classify failures with these; they live here (not in the serve
// package) so library callers embedding the serving layer can match them
// without importing it.
var (
	// ErrOverloaded reports a request shed by admission control: the
	// server's in-flight bound and wait queue were both full (HTTP 429 at
	// the serving boundary). The request was never admitted; retrying after
	// a short backoff is safe.
	ErrOverloaded = errors.New("server overloaded")

	// ErrDeadlineExceeded reports a query that ran out of its per-request
	// deadline (HTTP 504 at the serving boundary). It matches
	// context.DeadlineExceeded through errors.Is in both directions: an
	// error wrapping ErrDeadlineExceeded satisfies
	// errors.Is(err, context.DeadlineExceeded), and the serving layer maps
	// engine context.DeadlineExceeded failures onto this sentinel.
	ErrDeadlineExceeded error = deadlineExceededError{}
)

// deadlineExceededError implements ErrDeadlineExceeded. Its Is method makes
// errors.Is treat the sentinel as equivalent to context.DeadlineExceeded,
// so one check classifies both the engine's raw context error and the
// serving layer's wrapped form.
type deadlineExceededError struct{}

func (deadlineExceededError) Error() string { return "deadline exceeded" }

func (deadlineExceededError) Is(target error) bool {
	return target == context.DeadlineExceeded
}

// Timeout marks the error as a timeout for net.Error-style checks.
func (deadlineExceededError) Timeout() bool { return true }
