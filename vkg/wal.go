package vkg

import (
	"fmt"
	"time"

	"vkgraph/internal/core"
)

// The write-ahead log makes restarts instantly warm: between snapshots,
// every structural mutation — the crack splits queries pay for, plus
// AddFact/InsertEntity/SetEntityAttr — is appended to a checksummed sidecar
// log, and LoadFileWAL replays the suffix newer than the snapshot instead
// of rebuilding a cold index. A torn or corrupt log suffix never fails the
// load: the clean prefix is applied and the damage is truncated, visible in
// WALStats and on /metrics.

// WALSync selects the log's fsync policy; see the README's durability
// table for the tradeoff.
type WALSync int

const (
	// WALSyncInterval (default) fsyncs on a background ticker: bounded
	// loss on power failure, negligible append cost. Records are written
	// unbuffered, so a process crash (as opposed to power loss) loses
	// nothing regardless of fsync timing.
	WALSyncInterval WALSync = iota
	// WALSyncAlways fsyncs inside every mutation: zero loss on power
	// failure at one disk barrier per mutation.
	WALSyncAlways
	// WALSyncOff never fsyncs; the OS flushes on its own schedule.
	WALSyncOff
)

// WALConfig configures the write-ahead log.
type WALConfig struct {
	// Path of the log file; empty derives "<snapshot path>.wal".
	Path string
	// Sync is the fsync policy (default WALSyncInterval).
	Sync WALSync
	// SyncInterval is the ticker period under WALSyncInterval
	// (default 100ms).
	SyncInterval time.Duration
}

func (c WALConfig) core() core.WALOptions {
	return core.WALOptions{Path: c.Path, Sync: core.WALSync(c.Sync), SyncInterval: c.SyncInterval}
}

// WALStats is a point-in-time view of the write-ahead log, included in
// Metrics and available directly via VKG.WALStats.
type WALStats struct {
	// Enabled reports whether a WAL is configured.
	Enabled bool
	// Path of the log file.
	Path string
	// Generation of the snapshot the log extends; each WAL-armed SaveFile
	// bumps it and resets the log.
	Generation uint64

	AppendedRecords uint64
	AppendedBytes   uint64
	// AppendErrors counts mutations whose record was lost to an append
	// failure; one failure disarms logging until the next snapshot so the
	// log never has a gap.
	AppendErrors uint64
	Rotations    uint64

	// Replay counters from the most recent LoadFileWAL: how many records
	// warmed the index, how long that took, and how many torn/corrupt
	// suffix bytes were truncated (ReplayTruncations counts loads that had
	// to truncate; ReplayStale counts logs discarded whole for a
	// generation mismatch).
	ReplayedRecords    uint64
	ReplayDuration     time.Duration
	ReplayDroppedBytes uint64
	ReplayTruncations  uint64
	ReplayStale        uint64
}

func walStats(s core.WALStats) WALStats {
	return WALStats{
		Enabled:            s.Enabled,
		Path:               s.Path,
		Generation:         s.Generation,
		AppendedRecords:    s.AppendedRecords,
		AppendedBytes:      s.AppendedBytes,
		AppendErrors:       s.AppendErrors,
		Rotations:          s.Rotations,
		ReplayedRecords:    s.ReplayedRecords,
		ReplayDuration:     s.ReplayDuration,
		ReplayDroppedBytes: s.ReplayDroppedBytes,
		ReplayTruncations:  s.ReplayTruncations,
		ReplayStale:        s.ReplayStale,
	}
}

// LoadFileWAL loads a snapshot with its write-ahead log: records newer
// than the snapshot are replayed — restoring the crack structure and
// graph mutations the last process accrued after its final save — and the
// log stays armed, so further mutations keep appending. A snapshot written
// without a WAL is re-anchored in place (rewritten at generation 1 with a
// fresh log beside it). See Load for the snapshot error contract; log
// damage never fails the load.
func LoadFileWAL(path string, cfg WALConfig) (*VKG, error) {
	eng, err := core.LoadEngineFileWAL(path, cfg.core())
	if err != nil {
		return nil, err
	}
	return wrapLoadedEngine(eng), nil
}

// EnableWAL arms the write-ahead log on a live VKG: a fresh snapshot is
// written to snapshotPath (the anchor replays start from) and every later
// mutation is logged. Subsequent SaveFile(snapshotPath) calls rotate the
// log atomically with the snapshot.
func (v *VKG) EnableWAL(snapshotPath string, cfg WALConfig) error {
	if v.noIdx {
		return fmt.Errorf("vkg: ModeNoIndex has no index to log")
	}
	return v.eng.EnableWAL(snapshotPath, cfg.core())
}

// WALStats returns the current write-ahead log counters.
func (v *VKG) WALStats() WALStats { return walStats(v.eng.WALStats()) }

// CloseWAL syncs and closes the log; the VKG keeps serving, but mutations
// are no longer logged. Call it before process exit when not going through
// a draining server (serve.Drain snapshots, which rotates the log).
func (v *VKG) CloseWAL() error { return v.eng.CloseWAL() }
