// Package vkg is the public API of vkgraph: build a virtual knowledge graph
// (Li, Ge, Chen; ICDE 2020) from your triples and ask it predictive top-k
// entity queries and aggregate queries with accuracy guarantees.
//
// A virtual knowledge graph extends a knowledge graph with predicted edges
// and their probabilities. The pipeline is:
//
//  1. a TransE embedding is trained on the graph's triples (the prediction
//     algorithm A of the paper);
//  2. embedding vectors are projected from the d-dimensional space S1 into
//     a low-dimensional space S2 by a Johnson-Lindenstrauss transform with
//     small-alpha tail bounds (Theorem 1);
//  3. a cracking, uneven R-tree over S2 is built online by the queries
//     themselves (Section IV), so there is no offline index build;
//  4. top-k queries run Algorithm 3 and aggregate queries run the sampled
//     estimators of Section V-B, each answer carrying its theoretical
//     accuracy bound.
//
// Quickstart:
//
//	g := vkg.NewGraph()
//	amy := g.AddEntity("Amy", "user")
//	r1 := g.AddEntity("Restaurant 1", "restaurant")
//	likes := g.AddRelation("rates-high")
//	g.AddTriple(amy, likes, r1)
//	// ... more entities and triples ...
//	v, err := vkg.Build(g, vkg.WithSeed(42))
//	preds, err := v.TopKTails(amy, likes, 5) // top-5 restaurants Amy would rate high
//
// # Batched queries
//
// Serving workloads issue many queries at once; Query and DoBatch are the
// request API for that. A Query names the direction (Tails/Heads), the kind
// (TopK/Aggregate), the entity and relation, and optional per-query
// Epsilon/ProbThreshold overrides; DoBatch fans a slice of them across a
// bounded worker pool, coalesces duplicate top-k requests into one index
// descent, serves repeats of an unchanged graph from an LRU result cache,
// and honors context cancellation:
//
//	queries := []vkg.Query{
//		{Entity: amy, Relation: likes, K: 5},
//		{Kind: vkg.Aggregate, Dir: vkg.Heads, Entity: r1, Relation: likes,
//			Agg: vkg.AggSpec{Kind: vkg.Avg, Attr: "age", MaxAccess: 50}},
//	}
//	for i, res := range v.DoBatch(ctx, queries) {
//		if res.Err != nil { ... } // per-query failures don't fail the batch
//	}
//
// TopKTails, TopKHeads, AggregateTails, and AggregateHeads are thin
// wrappers over the same path, so single-query callers share the cache and
// the validation.
//
// # Observability
//
// Engine counters are always on and lock-free. Metrics returns a structured
// snapshot (latency percentiles, cache effectiveness, index node accesses,
// cracking activity); Query.Trace asks for a per-query stage breakdown in
// Result.Trace; ServeOps starts an HTTP listener with Prometheus /metrics,
// expvar, pprof, and a slow-query log (see SetSlowQueryThreshold).
//
// # Concurrency and durability
//
// A built VKG is safe for concurrent use: queries, aggregates, AddFact,
// InsertEntity, Save, and IndexStats may run from multiple goroutines. The
// cracking index is partitioned into spatial shards (WithShards), each with
// its own lock: queries run under a shared engine lock and write-lock only
// the shards whose pending regions they actually need to split, so a
// converged index serves reads without serializing and a cold one cracks
// different regions of space in parallel. The exception is embedding
// training with EmbeddingParams.Workers > 1 (Hogwild SGD, deliberately
// lock-free and racy); it happens inside Build, before the VKG exists.
//
// Save/SaveFile write checksummed, versioned snapshots; SaveFile is atomic
// (temp file + rename), so a crash mid-save never destroys the previous
// snapshot. Load returns typed errors for damaged input — see
// ErrCorruptSnapshot and ErrVersion — and degrades gracefully when only the
// index section is damaged (see IndexRebuilt).
package vkg

import (
	"errors"
	"fmt"

	"vkgraph/internal/core"
	"vkgraph/internal/embedding"
	"vkgraph/internal/kg"
	"vkgraph/internal/rtree"
)

// EntityID identifies an entity in a Graph.
type EntityID = int32

// RelationID identifies a relationship type in a Graph.
type RelationID = int32

// Graph is a knowledge graph under construction: typed entities, named
// relationship types, (head, relation, tail) triples, and numeric entity
// attributes for aggregate queries.
type Graph struct {
	g *kg.Graph
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{g: kg.NewGraph()} }

// AddEntity creates an entity with a display name and a type tag and
// returns its id.
func (gr *Graph) AddEntity(name, typ string) EntityID { return gr.g.AddEntity(name, typ) }

// AddRelation creates (or looks up) a relationship type by name.
func (gr *Graph) AddRelation(name string) RelationID { return gr.g.AddRelation(name) }

// AddTriple records the fact (h, r, t). Duplicate triples are ignored.
func (gr *Graph) AddTriple(h EntityID, r RelationID, t EntityID) error {
	return gr.g.AddTriple(h, r, t)
}

// SetAttr attaches a numeric attribute value to an entity; attribute
// columns are what aggregate queries aggregate.
func (gr *Graph) SetAttr(attr string, id EntityID, value float64) { gr.g.SetAttr(attr, id, value) }

// EntityName returns the display name of an entity.
func (gr *Graph) EntityName(id EntityID) string { return gr.g.Entity(id).Name }

// EntityByName returns the first entity created with the given name.
func (gr *Graph) EntityByName(name string) (EntityID, bool) { return gr.g.EntityByName(name) }

// RelationByName returns the relationship type with the given name.
func (gr *Graph) RelationByName(name string) (RelationID, bool) { return gr.g.RelationByName(name) }

// NumEntities returns the number of entities.
func (gr *Graph) NumEntities() int { return gr.g.NumEntities() }

// NumTriples returns the number of recorded facts.
func (gr *Graph) NumTriples() int { return gr.g.NumTriples() }

// HasEdge reports whether (h, r, t) is a known fact (an edge of E, not a
// prediction).
func (gr *Graph) HasEdge(h EntityID, r RelationID, t EntityID) bool { return gr.g.HasEdge(h, r, t) }

// AttrNames returns the names of every attribute column set on the graph,
// ready to pass to WithAttributes.
func (gr *Graph) AttrNames() []string { return gr.g.AttrNames() }

// Internal returns the underlying store, for use by this module's
// command-line tools and experiments.
//
// Deprecated: the returned store is unsynchronized and its API is not
// stable. External callers should stay on the Graph methods; Internal
// remains only for the cmd/ tools of this module.
func (gr *Graph) Internal() *kg.Graph { return gr.g }

// WrapGraph adopts an already-built internal graph (used by the CLI tools
// that load graphs from disk).
func WrapGraph(g *kg.Graph) *Graph { return &Graph{g: g} }

// IndexMode selects the index backend.
type IndexMode int

const (
	// ModeCrack is the paper's contribution: no offline build, the index
	// grows with the query workload. Default.
	ModeCrack IndexMode = iota
	// ModeCrackTopK is ModeCrack with the A*-style top-k split search
	// (Algorithm 2); set the number of choices with WithSplitChoices.
	ModeCrackTopK
	// ModeBulk bulk-loads the complete R-tree up front (Algorithm 1).
	ModeBulk
	// ModeNoIndex answers every query by scanning all entities in S1. It
	// is exact (it is the paper's accuracy ground truth) but slow.
	ModeNoIndex
)

// EmbeddingParams expose the TransE hyperparameters.
type EmbeddingParams struct {
	Dim          int     // embedding dimensionality (default 50)
	Epochs       int     // training epochs (default 30)
	LearningRate float64 // SGD step (default 0.01)
	Margin       float64 // ranking margin (default 1.0)
	L1           bool    // use L1 dissimilarity instead of L2
	// Workers > 1 trains with lock-free parallel SGD (Hogwild): much
	// faster on large graphs, at the cost of run-to-run determinism.
	Workers int
}

type options struct {
	mode         IndexMode
	alpha        int
	eps          float64
	pTau         float64
	seed         int64
	splitChoices int
	leafCap      int
	fanout       int
	beta         float64
	emb          EmbeddingParams
	model        *embedding.Model
	attrs        []string
	shards       int
	packedCoords bool
}

// Option customizes Build.
type Option func(*options)

// WithIndexMode selects the index backend (default ModeCrack).
func WithIndexMode(m IndexMode) Option { return func(o *options) { o.mode = m } }

// WithAlpha sets the S2 dimensionality (default 3; the paper also evaluates
// 6).
func WithAlpha(alpha int) Option { return func(o *options) { o.alpha = alpha } }

// WithEpsilon sets the query-expansion epsilon of Algorithm 3 (default
// 0.75). Larger values improve the Theorem 2 recall bound at higher cost.
func WithEpsilon(eps float64) Option { return func(o *options) { o.eps = eps } }

// WithProbabilityThreshold sets p_tau, the minimum predicted probability
// for entities included in aggregate queries (default 0.05).
func WithProbabilityThreshold(p float64) Option { return func(o *options) { o.pTau = p } }

// WithSeed fixes all randomized components (embedding init, JL projection).
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithSplitChoices sets the k of the top-k split search (2-4 in the paper);
// it implies ModeCrackTopK when > 1.
func WithSplitChoices(k int) Option { return func(o *options) { o.splitChoices = k } }

// WithLeafCapacity sets N, the R-tree leaf capacity (default 32).
func WithLeafCapacity(n int) Option { return func(o *options) { o.leafCap = n } }

// WithFanout sets M, the R-tree fanout (default 8).
func WithFanout(m int) Option { return func(o *options) { o.fanout = m } }

// WithBeta sets the height weighting of the overlap cost (default 2).
func WithBeta(b float64) Option { return func(o *options) { o.beta = b } }

// WithEmbedding overrides the TransE hyperparameters.
func WithEmbedding(p EmbeddingParams) Option { return func(o *options) { o.emb = p } }

// WithPretrainedModel skips training and uses the given model (as loaded by
// the vkg-train tool). The model must match the graph's entity/relation
// counts.
func WithPretrainedModel(m *embedding.Model) Option { return func(o *options) { o.model = m } }

// WithModelFrom reuses the trained embedding of an existing VKG, skipping
// training. It is how comparison runs build several index backends over the
// same graph and the same embedding so the measured differences come from
// the index alone. The source must have been built from the same graph.
func WithModelFrom(src *VKG) Option { return func(o *options) { o.model = src.eng.Model() } }

// WithAttributes registers graph attribute columns with the index so they
// can be aggregated. Attributes named in aggregate queries must be listed
// here.
func WithAttributes(names ...string) Option {
	return func(o *options) { o.attrs = append(o.attrs, names...) }
}

// WithShards partitions the cracking index into n spatial shards (rounded
// down to a power of two, capped at 64), each with its own lock, so queries
// cracking different regions of space do not serialize. The default (0)
// derives the count from GOMAXPROCS; 1 disables sharding. ModeBulk always
// uses a single shard — a fully built tree never cracks. Sharding changes
// locking only, not answers: sharded and unsharded engines return identical
// predictions.
func WithShards(n int) Option { return func(o *options) { o.shards = n } }

// WithPackedCoords controls the packed columnar coordinate mirror (default
// true). When on, the index keeps a float32 copy of the S2 coordinates in
// per-dimension columns and uses it as a conservative distance prefilter;
// every surviving candidate is re-checked in exact float64, so answers are
// byte-identical to the unpacked path — packing changes memory layout and
// speed only, never results. Pass false to fall back to row-major float64
// scans (e.g. to rule the mirror out while debugging, or to save the
// extra 4*alpha bytes per entity).
func WithPackedCoords(on bool) Option { return func(o *options) { o.packedCoords = on } }

// VKG is a queryable virtual knowledge graph. All methods are safe for
// concurrent use (see the package documentation for the locking model).
type VKG struct {
	graph  *Graph
	eng    *core.Engine
	mode   IndexMode
	noIdx  bool
	trainL []float64
}

// Build constructs a virtual knowledge graph: trains (or adopts) the
// embedding, projects it to S2, and prepares the index backend.
func Build(gr *Graph, opts ...Option) (*VKG, error) {
	if gr == nil {
		return nil, errors.New("vkg: nil graph")
	}
	o := options{
		mode:         ModeCrack,
		alpha:        3,
		eps:          0.75,
		pTau:         0.05,
		seed:         1,
		emb:          EmbeddingParams{},
		packedCoords: true,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.splitChoices > 1 && o.mode == ModeCrack {
		o.mode = ModeCrackTopK
	}
	gr.g.Freeze()

	model := o.model
	var losses []float64
	if model == nil {
		cfg := embedding.DefaultConfig()
		cfg.Seed = o.seed
		if o.emb.Dim > 0 {
			cfg.Dim = o.emb.Dim
		}
		if o.emb.Epochs > 0 {
			cfg.Epochs = o.emb.Epochs
		}
		if o.emb.LearningRate > 0 {
			cfg.LearningRate = o.emb.LearningRate
		}
		if o.emb.Margin > 0 {
			cfg.Margin = o.emb.Margin
		}
		if o.emb.L1 {
			cfg.Norm = embedding.L1
		}
		if o.emb.Workers > 1 {
			cfg.Workers = o.emb.Workers
		}
		tr, err := embedding.Train(gr.g, cfg)
		if err != nil {
			return nil, fmt.Errorf("vkg: training embedding: %w", err)
		}
		model = tr.Model
		losses = tr.EpochLosses
	}

	params := core.Params{
		Alpha:        o.alpha,
		Eps:          o.eps,
		PTau:         o.pTau,
		Seed:         o.seed,
		Attrs:        o.attrs,
		Shards:       o.shards,
		PackedCoords: o.packedCoords,
		Index: rtree.Options{
			LeafCap:      o.leafCap,
			Fanout:       o.fanout,
			Beta:         o.beta,
			SplitChoices: max(1, o.splitChoices),
		},
	}
	mode := core.Crack
	if o.mode == ModeBulk {
		mode = core.Bulk
	}
	eng, err := core.NewEngine(gr.g, model, mode, params)
	if err != nil {
		return nil, fmt.Errorf("vkg: building engine: %w", err)
	}
	return &VKG{
		graph:  gr,
		eng:    eng,
		mode:   o.mode,
		noIdx:  o.mode == ModeNoIndex,
		trainL: losses,
	}, nil
}

// Graph returns the underlying graph.
func (v *VKG) Graph() *Graph { return v.graph }

// Engine exposes the internal engine for the module's own tools and
// benchmarks.
//
// Deprecated: the engine API is internal and not stable. External callers
// should use the VKG methods — Do/DoBatch cover everything the engine's
// query surface does; Engine remains only for the cmd/ tools of this
// module.
func (v *VKG) Engine() *core.Engine { return v.eng }

// TrainingLosses returns the per-epoch embedding losses (empty when a
// pretrained model was supplied).
func (v *VKG) TrainingLosses() []float64 { return v.trainL }
