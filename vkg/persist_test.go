package vkg

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	amy, _ := g.EntityByName("user0")
	// Warm the index so there is real shape to preserve.
	for i := 0; i < 8; i++ {
		if _, err := v.TopKTails(amy, ratesHigh, 5); err != nil {
			t.Fatal(err)
		}
	}
	want, err := v.TopKTails(amy, ratesHigh, 5)
	if err != nil {
		t.Fatal(err)
	}
	statsBefore := v.IndexStats()

	var buf bytes.Buffer
	if err := v.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	statsAfter := loaded.IndexStats()
	if statsAfter.TotalNodes != statsBefore.TotalNodes ||
		statsAfter.BinarySplits != statsBefore.BinarySplits {
		t.Fatalf("index shape changed: %+v vs %+v", statsAfter, statsBefore)
	}

	amy2, ok := loaded.Graph().EntityByName("user0")
	if !ok || amy2 != amy {
		t.Fatalf("entity ids changed: %d vs %d", amy2, amy)
	}
	got, err := loaded.TopKTails(amy2, ratesHigh, 5)
	if err != nil {
		t.Fatalf("query on loaded VKG: %v", err)
	}
	for i := range want.Predictions {
		if got.Predictions[i].Entity != want.Predictions[i].Entity {
			t.Fatalf("answers changed after round trip: %v vs %v",
				got.Predictions, want.Predictions)
		}
	}

	// Aggregates still work (attribute columns re-registered).
	r1, _ := loaded.Graph().EntityByName("restaurant1")
	if _, err := loaded.AggregateHeads(r1, ratesHigh, AggSpec{Kind: Avg, Attr: "age"}); err != nil {
		t.Fatalf("aggregate on loaded VKG: %v", err)
	}
	// Dynamic updates still work.
	if _, err := loaded.InsertEntity("late", "restaurant",
		[]Fact{{Rel: ratesHigh, Other: amy2}}, nil); err != nil {
		t.Fatalf("insert on loaded VKG: %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	amy, _ := g.EntityByName("user0")
	if _, err := v.TopKTails(amy, ratesHigh, 5); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "v.vkg")
	if err := v.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("LoadFile: %v", err)
	}
	if loaded.Graph().NumEntities() != g.NumEntities() {
		t.Fatal("entities lost in file round trip")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.vkg")); err == nil {
		t.Fatal("LoadFile accepted a missing file")
	}
}

func TestSaveNoIndexRejected(t *testing.T) {
	g, _, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts(WithIndexMode(ModeNoIndex))...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.Save(&buf); err == nil {
		t.Fatal("Save accepted ModeNoIndex")
	}
}
