package vkg

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

// TestServingSentinels pins the errors.Is contract of the serving-layer
// sentinels: ErrDeadlineExceeded is interchangeable with
// context.DeadlineExceeded under wrapping, and ErrOverloaded survives a
// boundary wrap.
func TestServingSentinels(t *testing.T) {
	wrapped := fmt.Errorf("serve: query expired: %w", ErrDeadlineExceeded)
	if !errors.Is(wrapped, ErrDeadlineExceeded) {
		t.Error("wrapped ErrDeadlineExceeded does not match itself")
	}
	if !errors.Is(wrapped, context.DeadlineExceeded) {
		t.Error("wrapped ErrDeadlineExceeded does not match context.DeadlineExceeded")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	if !errors.Is(ErrDeadlineExceeded, ctx.Err()) {
		t.Error("ErrDeadlineExceeded does not match a real context deadline error")
	}

	shed := fmt.Errorf("serve: admission queue full: %w", ErrOverloaded)
	if !errors.Is(shed, ErrOverloaded) {
		t.Error("wrapped ErrOverloaded does not match")
	}
	if errors.Is(shed, ErrDeadlineExceeded) {
		t.Error("ErrOverloaded must not match ErrDeadlineExceeded")
	}

	var to interface{ Timeout() bool }
	if !errors.As(wrapped, &to) || !to.Timeout() {
		t.Error("ErrDeadlineExceeded should report Timeout() == true")
	}
}
