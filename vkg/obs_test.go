package vkg

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestMetricsEndToEnd drives real queries through the request API and checks
// the counters tell a consistent story: executions + cache hits account for
// every call, cracking activity matches the index stats, and the latency
// histogram saw every execution.
func TestMetricsEndToEnd(t *testing.T) {
	g, ratesHigh, frequents := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	var queries []Query
	for i := EntityID(0); i < 20; i++ {
		u, ok := g.EntityByName("user" + itoa(int(i)))
		if !ok {
			t.Fatalf("user%d missing", i)
		}
		queries = append(queries, Query{Entity: u, Relation: ratesHigh, K: 5})
	}
	for i, res := range v.DoBatchWorkers(ctx, queries, 4) {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
	}
	// Repeat the whole batch: an unchanged graph serves every repeat from
	// the cache or coalesces it onto an in-flight execution.
	for i, res := range v.DoBatchWorkers(ctx, queries, 4) {
		if res.Err != nil {
			t.Fatalf("repeat query %d: %v", i, res.Err)
		}
	}

	m := v.Metrics()
	if m.TopKQueries == 0 || m.TopKQueries > 20 {
		t.Errorf("TopKQueries = %d, want in (0, 20]", m.TopKQueries)
	}
	total := m.TopKQueries + m.Cache.Hits + m.Coalesced
	if total != 40 {
		t.Errorf("executions(%d) + hits(%d) + coalesced(%d) = %d, want 40",
			m.TopKQueries, m.Cache.Hits, m.Coalesced, total)
	}
	if m.TopKLatency.Count != m.TopKQueries {
		t.Errorf("latency count %d != executed queries %d", m.TopKLatency.Count, m.TopKQueries)
	}
	if m.TopKLatency.P95 <= 0 || m.TopKLatency.Mean <= 0 {
		t.Errorf("latency snapshot empty: %+v", m.TopKLatency)
	}
	if m.CandidatesExamined == 0 {
		t.Error("CandidatesExamined = 0 after 20 distinct queries")
	}
	if m.NodeAccessInternal+m.NodeAccessLeaf+m.NodeAccessPending == 0 {
		t.Error("no node accesses recorded")
	}
	if m.CrackQueries+m.WarmQueries != m.TopKQueries {
		t.Errorf("cold(%d) + warm(%d) != executed(%d)",
			m.CrackQueries, m.WarmQueries, m.TopKQueries)
	}
	if int(m.CrackSplits) != m.Index.BinarySplits {
		t.Errorf("CrackSplits %d != IndexStats.BinarySplits %d", m.CrackSplits, m.Index.BinarySplits)
	}
	if m.QueryErrors != 0 {
		t.Errorf("QueryErrors = %d, want 0", m.QueryErrors)
	}

	// Errors are counted, not just returned.
	if _, err := v.TopKTails(9999, ratesHigh, 5); err == nil {
		t.Fatal("expected an error for an unknown entity")
	}
	if got := v.Metrics().QueryErrors; got != 1 {
		t.Errorf("QueryErrors = %d after one bad query, want 1", got)
	}

	// Aggregates feed their own counters.
	u0, _ := g.EntityByName("user0")
	if _, err := v.AggregateTails(u0, frequents, AggSpec{Kind: Count}); err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	m = v.Metrics()
	if m.AggregateQueries != 1 {
		t.Errorf("AggregateQueries = %d, want 1", m.AggregateQueries)
	}
	if m.AggBallPoints == 0 {
		t.Error("AggBallPoints = 0 after a count aggregate")
	}

	// ResetCache zeroes the cache counters but not the query counters.
	v.ResetCache()
	m = v.Metrics()
	if m.Cache.Hits != 0 || m.Cache.Misses != 0 || m.Cache.Entries != 0 {
		t.Errorf("cache counters after ResetCache: %+v", m.Cache)
	}
	if m.TopKQueries == 0 {
		t.Error("TopKQueries was reset by ResetCache")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestQueryTrace checks the opt-in stage breakdown: the expected stages in
// order, contiguous spans summing to the wall time, and the cost counters.
func TestQueryTrace(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	u0, _ := g.EntityByName("user0")

	res, err := v.Do(context.Background(), Query{Entity: u0, Relation: ratesHigh, K: 5, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("Trace requested but Result.Trace is nil")
	}
	if tr.CacheHit {
		t.Error("first query reported a cache hit")
	}
	var stages []string
	var sum time.Duration
	for _, s := range tr.Spans {
		stages = append(stages, s.Stage)
		sum += s.Dur
	}
	want := []string{"cache", "validate", "transform", "search", "refine", "crack"}
	if strings.Join(stages, ",") != strings.Join(want, ",") {
		t.Errorf("stages = %v, want %v", stages, want)
	}
	if tr.Wall <= 0 || sum > tr.Wall {
		t.Errorf("wall %v, span sum %v", tr.Wall, sum)
	}
	if slack := tr.Wall - sum; slack > 10*time.Millisecond {
		t.Errorf("untraced slack %v too large (wall %v, sum %v)", slack, tr.Wall, sum)
	}
	if tr.Examined == 0 {
		t.Error("trace reports 0 candidates examined")
	}

	// The repeat is a cache hit and says so.
	res, err = v.Do(context.Background(), Query{Entity: u0, Relation: ratesHigh, K: 5, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || !res.Trace.CacheHit {
		t.Fatalf("repeat trace = %+v, want CacheHit", res.Trace)
	}

	// Without Trace (and no slow log), no trace is allocated.
	res, err = v.Do(context.Background(), Query{Entity: u0, Relation: ratesHigh, K: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("untraced query returned a trace")
	}
}

// TestServeOps scrapes a live ops listener: /metrics must serve parseable
// Prometheus text carrying the engine's counter families.
func TestServeOps(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	u0, _ := g.EntityByName("user0")
	if _, err := v.TopKTails(u0, ratesHigh, 5); err != nil {
		t.Fatal(err)
	}

	ops, err := v.ServeOps("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ops.Close()

	resp, err := http.Get("http://" + ops.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, family := range []string{
		"vkg_queries_total",
		"vkg_query_latency_seconds_bucket",
		"vkg_cache_hits_total",
		"vkg_cache_misses_total",
		"vkg_singleflight_coalesced_total",
		"vkg_crack_splits_total",
		"vkg_index_node_accesses_total",
		"vkg_index_nodes",
	} {
		if !strings.Contains(body, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	if !strings.Contains(body, `vkg_queries_total{kind="topk"} 1`) {
		t.Errorf("/metrics missing topk count:\n%s", body[:min(len(body), 2000)])
	}
}

// TestSlowQueryLog arms the slow log with a zero-distance threshold so every
// query qualifies, then checks entries carry stage breakdowns.
func TestSlowQueryLog(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	v.SetSlowQueryThreshold(time.Nanosecond)
	u0, _ := g.EntityByName("user0")
	if _, err := v.TopKTails(u0, ratesHigh, 5); err != nil {
		t.Fatal(err)
	}
	slow := v.SlowQueries()
	if len(slow) == 0 {
		t.Fatal("no slow queries recorded under a 1ns threshold")
	}
	e := slow[0]
	if !strings.Contains(e.Query, "topk") {
		t.Errorf("slow entry query = %q", e.Query)
	}
	if e.Trace == nil || len(e.Trace.Spans) == 0 {
		t.Errorf("slow entry missing stage breakdown: %+v", e.Trace)
	}
	v.SetSlowQueryThreshold(0)
}
