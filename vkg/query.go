package vkg

import (
	"context"
	"fmt"

	"vkgraph/internal/core"
)

// Prediction is one predicted edge: the entity, its embedding distance to
// the query point (smaller is more plausible), and the predicted
// probability (1 for the closest entity, decaying inversely with distance).
type Prediction struct {
	Entity EntityID
	Name   string
	Dist   float64
	Prob   float64
}

// TopKResult carries the ranked predictions with the paper's Theorem 2
// accuracy guarantee.
type TopKResult struct {
	Predictions []Prediction
	// RecallBound is a lower bound on the probability that no true top-k
	// entity is missing from Predictions.
	RecallBound float64
	// ExpectedMisses bounds the expected number of true top-k entities
	// missing from Predictions.
	ExpectedMisses float64
	// Examined is how many candidate entities the query had to score.
	Examined int
}

// TopKTails returns the k entities most likely to be a tail of (h, r, ?),
// excluding facts already in the graph — e.g. "top-5 restaurants Amy would
// rate high but has not been to yet". It is a thin wrapper over Do; for
// many queries at once, use DoBatch.
func (v *VKG) TopKTails(h EntityID, r RelationID, k int) (*TopKResult, error) {
	res, err := v.Do(context.Background(), Query{Kind: TopK, Dir: Tails, Entity: h, Relation: r, K: k})
	if err != nil {
		return nil, err
	}
	return res.TopK, nil
}

// TopKHeads returns the k entities most likely to be a head of (?, r, t) —
// e.g. "top-5 people who would like Restaurant 2". It is a thin wrapper
// over Do; for many queries at once, use DoBatch.
func (v *VKG) TopKHeads(t EntityID, r RelationID, k int) (*TopKResult, error) {
	res, err := v.Do(context.Background(), Query{Kind: TopK, Dir: Heads, Entity: t, Relation: r, K: k})
	if err != nil {
		return nil, err
	}
	return res.TopK, nil
}

func (v *VKG) convert(res *core.TopKResult) *TopKResult {
	out := &TopKResult{
		RecallBound:    res.RecallBound,
		ExpectedMisses: res.ExpectedMisses,
		Examined:       res.Examined,
	}
	for _, p := range res.Predictions {
		out.Predictions = append(out.Predictions, Prediction{
			Entity: p.Entity,
			// Engine.EntityName synchronizes against concurrent
			// InsertEntity calls; the raw graph accessor does not.
			Name: v.eng.EntityName(p.Entity),
			Dist: p.Dist,
			Prob: p.Prob,
		})
	}
	return out
}

// AggKind selects the aggregate function.
type AggKind int

const (
	Count AggKind = iota
	Sum
	Avg
	Max
	Min
)

// AggSpec describes an aggregate query over predicted edges.
type AggSpec struct {
	Kind AggKind
	// Attr is the aggregated attribute (registered via WithAttributes).
	// Count counts predicted edges rather than aggregating values, so
	// setting Attr on a Count is rejected.
	Attr string
	// MaxAccess is the sample size a: the number of closest ball entities
	// whose attributes are materialized. 0 accesses the whole ball. This
	// is the speed/accuracy knob of Figures 12-16.
	MaxAccess int
	// ProbThreshold overrides the build-time p_tau for this query.
	ProbThreshold float64
}

// AggResult is an aggregate estimate with its Theorem 4 martingale bound.
type AggResult struct {
	Value    float64
	Accessed int // a: ball entities actually materialized
	BallSize int // b: entities in the probability ball

	inner core.AggResult
}

// ErrorProbability bounds the probability that the ground-truth aggregate
// deviates from Value by more than the given relative delta (Theorem 4).
func (r *AggResult) ErrorProbability(delta float64) float64 {
	return r.inner.ErrorProbability(delta)
}

// ConfidenceRadius returns the relative error radius guaranteed with the
// given confidence (e.g. 0.95).
func (r *AggResult) ConfidenceRadius(conf float64) float64 {
	return r.inner.ConfidenceRadius(conf)
}

// convertAgg validates an AggSpec at the API edge — so misuse fails loudly
// here rather than behaving oddly deep in the sampling estimators — and
// lowers it to the engine query type.
func convertAgg(spec AggSpec) (core.AggQuery, error) {
	q := core.AggQuery{
		Attr:      spec.Attr,
		MaxAccess: spec.MaxAccess,
		PTau:      spec.ProbThreshold,
	}
	if spec.MaxAccess < 0 {
		return q, fmt.Errorf("vkg: negative MaxAccess %d", spec.MaxAccess)
	}
	if spec.ProbThreshold < 0 || spec.ProbThreshold > 1 {
		return q, fmt.Errorf("vkg: probability threshold %v outside (0, 1]", spec.ProbThreshold)
	}
	switch spec.Kind {
	case Count:
		if spec.Attr != "" {
			return q, fmt.Errorf("vkg: Attr %q set on a Count aggregate (Count counts predicted edges, not attribute values)", spec.Attr)
		}
		q.Kind = core.Count
	case Sum:
		q.Kind = core.Sum
	case Avg:
		q.Kind = core.Avg
	case Max:
		q.Kind = core.Max
	case Min:
		q.Kind = core.Min
	default:
		return q, fmt.Errorf("vkg: unknown aggregate kind %d", spec.Kind)
	}
	return q, nil
}

// wrapAgg lifts an engine aggregate result into the public type.
func wrapAgg(res *core.AggResult) *AggResult {
	return &AggResult{Value: res.Value, Accessed: res.Accessed, BallSize: res.BallSize, inner: *res}
}

// AggregateTails estimates an aggregate over the predicted tails of
// (h, r, ?) — e.g. "the expected number of restaurants Amy may like". It is
// a thin wrapper over Do; for many queries at once, use DoBatch.
func (v *VKG) AggregateTails(h EntityID, r RelationID, spec AggSpec) (*AggResult, error) {
	res, err := v.Do(context.Background(), Query{Kind: Aggregate, Dir: Tails, Entity: h, Relation: r, Agg: spec})
	if err != nil {
		return nil, err
	}
	return res.Agg, nil
}

// AggregateHeads estimates an aggregate over the predicted heads of
// (?, r, t) — e.g. "the average age of the people who would like
// Restaurant 2" (Q2 of the paper). It is a thin wrapper over Do; for many
// queries at once, use DoBatch.
func (v *VKG) AggregateHeads(t EntityID, r RelationID, spec AggSpec) (*AggResult, error) {
	res, err := v.Do(context.Background(), Query{Kind: Aggregate, Dir: Heads, Entity: t, Relation: r, Agg: spec})
	if err != nil {
		return nil, err
	}
	return res.Agg, nil
}

// IndexStats summarizes the index structure: node counts, binary splits
// performed, and estimated size in bytes. For a cracking index these grow
// with the query workload and converge quickly (Figs. 9-11 of the paper).
type IndexStats struct {
	InternalNodes int
	LeafNodes     int
	PendingNodes  int
	TotalNodes    int
	BinarySplits  int
	// SizeBytes estimates the index footprint: arena slab bytes plus the
	// heap referenced by nodes (leaf id slices, pending partitions, child
	// pointer slices). It excludes the point set and the packed mirror —
	// see PackedBytes and Metrics().Memory.
	SizeBytes int
	Height    int

	// ArenaNodesInUse/Free count node-arena records summed over shards;
	// ArenaBytes is the slab memory backing them. PackedBytes is the size
	// of the packed float32 coordinate mirror (shared by all shards; 0
	// when WithPackedCoords(false)).
	ArenaNodesInUse int
	ArenaNodesFree  int
	ArenaBytes      int
	PackedBytes     int
}

// IndexStats returns current index statistics.
func (v *VKG) IndexStats() IndexStats {
	s := v.eng.IndexStats()
	return IndexStats{
		InternalNodes:   s.InternalNodes,
		LeafNodes:       s.LeafNodes,
		PendingNodes:    s.PendingNodes,
		TotalNodes:      s.TotalNodes,
		BinarySplits:    s.BinarySplits,
		SizeBytes:       s.SizeBytes,
		Height:          s.Height,
		ArenaNodesInUse: s.ArenaNodesInUse,
		ArenaNodesFree:  s.ArenaNodesFree,
		ArenaBytes:      s.ArenaBytes,
		PackedBytes:     v.eng.PackedBytes(),
	}
}
