package vkg

import (
	"fmt"
	"strings"
	"time"

	"vkgraph/internal/obs"
)

// LatencyStats summarizes a latency distribution: the observation count and
// the mean/median/tail durations.
type LatencyStats struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

func latencyStats(h obs.HistSnapshot) LatencyStats {
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	return LatencyStats{
		Count: h.Count,
		Mean:  sec(h.Mean()),
		P50:   sec(h.P50),
		P95:   sec(h.P95),
		P99:   sec(h.P99),
	}
}

// Metrics is a structured point-in-time view of every engine counter: query
// volumes and latency distributions, the paper's cost counters (node
// accesses of Lemma 3, candidates examined, a and b of Theorem 4), the
// cracking activity of Section IV, and the serving-layer cache/coalescing/
// lock statistics. Counters accumulate from Build; LatencyStats percentiles
// are over all observations so far.
type Metrics struct {
	// TopKQueries and AggregateQueries count queries executed against the
	// index; answers served from the result cache or coalesced onto another
	// in-flight execution are counted by Cache.Hits and Coalesced instead.
	// QueryErrors counts rejections (unknown ids, execution failures).
	TopKQueries      uint64
	AggregateQueries uint64
	QueryErrors      uint64

	TopKLatency      LatencyStats
	AggregateLatency LatencyStats

	// CandidatesExamined counts entities whose exact S1 distance was
	// computed — the dominant query cost. PrunedByBound counts candidate
	// refinements abandoned early by the running kth-distance bound.
	CandidatesExamined uint64
	PrunedByBound      uint64

	// NodeAccess* count index nodes visited by traversals, by node type —
	// the access cost the paper's Lemma 3 bounds.
	NodeAccessInternal uint64
	NodeAccessLeaf     uint64
	NodeAccessPending  uint64

	// AggPointsAccessed (a) and AggBallPoints (b) are summed over aggregate
	// queries (Theorem 4); AggMaxAccessCapped counts queries whose sample
	// was truncated by MaxAccess.
	AggPointsAccessed  uint64
	AggBallPoints      uint64
	AggMaxAccessCapped uint64

	// CrackQueries/WarmQueries split queries by whether their region still
	// needed cracking; a converging index drives the cold share toward 0.
	CrackQueries      uint64
	WarmQueries       uint64
	CrackSplits       uint64
	CrackNodesCreated uint64
	// CrackWriteLock is the time spent holding the engine write lock to
	// crack, per cracking query.
	CrackWriteLock LatencyStats

	// Cache and Coalesced cover the serving layer: the top-k result cache
	// and the singleflight coalescing of duplicate in-flight requests.
	Cache     CacheStats
	Coalesced uint64

	// ReadLockWait and WriteLockWait measure contention on the engine lock
	// (WriteLockWait also folds in the per-shard crack-lock waits).
	ReadLockWait  LatencyStats
	WriteLockWait LatencyStats

	// Shards is the spatial shard count of the index (see WithShards);
	// ShardWriteLockWait and ShardCrackLock break the cracking-path lock
	// wait and hold times down by shard, indexed 0..Shards-1.
	Shards             int
	ShardWriteLockWait []LatencyStats
	ShardCrackLock     []LatencyStats

	// Memory is the memory-layout view of the index: how many bytes the
	// packed coordinate mirror occupies, the node-arena occupancy, the
	// resident point count, and the runtime's recent GC pause tail.
	Memory MemoryStats

	// Index is the current index structure (also available via IndexStats).
	Index IndexStats

	// WAL is the write-ahead log state: appends and rotations on the write
	// side, replay and truncation counters from the most recent load.
	WAL WALStats

	// DroppedAttributes lists attributes the snapshot named but the loaded
	// graph lacked; the load dropped them (degraded) instead of failing.
	DroppedAttributes []string

	// Generation is the graph mutation counter; cached answers are pinned
	// to the generation they were computed at.
	Generation uint64
}

// MemoryStats is the memory-layout block of Metrics (see WithPackedCoords
// and the DESIGN.md "Memory layout" section).
type MemoryStats struct {
	// PackedBytes is the size of the packed float32 coordinate mirror
	// (0 when WithPackedCoords(false)). The mirror is shared by all shards.
	PackedBytes int
	// ArenaNodesInUse and ArenaNodesFree count tree-node arena records,
	// summed over shards; free records are reusable capacity already paid
	// for (freelist plus the unallocated tail of the newest slab).
	ArenaNodesInUse int
	ArenaNodesFree  int
	// ResidentPoints is the number of S2 points held by the point set.
	ResidentPoints int
	// GCPauseP99 is the 99th-percentile stop-the-world GC pause of this
	// process since start, from runtime/metrics (0 before the first GC).
	GCPauseP99 time.Duration
}

// CacheHitRate returns hits / (hits + misses), or 0 before any lookup.
func (m Metrics) CacheHitRate() float64 {
	total := m.Cache.Hits + m.Cache.Misses
	if total == 0 {
		return 0
	}
	return float64(m.Cache.Hits) / float64(total)
}

// Metrics captures the current engine counters. It is race-clean under
// concurrent queries but not an instantaneous cut: counters are read one
// atomic load at a time.
func (v *VKG) Metrics() Metrics {
	s := v.eng.MetricsSnapshot()
	sww := make([]LatencyStats, len(s.ShardWriteWait))
	scl := make([]LatencyStats, len(s.ShardCrackLock))
	for i := range sww {
		sww[i] = latencyStats(s.ShardWriteWait[i])
		scl[i] = latencyStats(s.ShardCrackLock[i])
	}
	return Metrics{
		TopKQueries:        s.TopKQueries,
		AggregateQueries:   s.AggregateQueries,
		QueryErrors:        s.QueryErrors,
		TopKLatency:        latencyStats(s.TopKLatency),
		AggregateLatency:   latencyStats(s.AggregateLatency),
		CandidatesExamined: s.CandidatesExamined,
		PrunedByBound:      s.PrunedByBound,
		NodeAccessInternal: s.NodeAccessInternal,
		NodeAccessLeaf:     s.NodeAccessLeaf,
		NodeAccessPending:  s.NodeAccessPending,
		AggPointsAccessed:  s.AggPointsAccessed,
		AggBallPoints:      s.AggBallPoints,
		AggMaxAccessCapped: s.AggMaxAccessCapped,
		CrackQueries:       s.CrackQueries,
		WarmQueries:        s.WarmQueries,
		CrackSplits:        s.CrackSplits,
		CrackNodesCreated:  s.CrackNodesCreated,
		CrackWriteLock:     latencyStats(s.CrackWriteLock),
		Cache:              CacheStats{Hits: s.CacheHits, Misses: s.CacheMisses, Entries: s.CacheEntries},
		Coalesced:          s.Coalesced,
		ReadLockWait:       latencyStats(s.ReadLockWait),
		WriteLockWait:      latencyStats(s.WriteLockWait),
		Shards:             s.Shards,
		ShardWriteLockWait: sww,
		ShardCrackLock:     scl,
		Memory: MemoryStats{
			PackedBytes:     s.PackedBytes,
			ArenaNodesInUse: s.ArenaNodesInUse,
			ArenaNodesFree:  s.ArenaNodesFree,
			ResidentPoints:  s.ResidentPoints,
			GCPauseP99:      time.Duration(s.GCPauseP99 * float64(time.Second)),
		},
		Index:             v.IndexStats(),
		WAL:               walStats(s.WAL),
		DroppedAttributes: s.DroppedAttrs,
		Generation:        s.Generation,
	}
}

// ResetCache drops every cached top-k answer and zeroes the cache hit/miss
// counters. Benchmarks use it to separate cold-index from warm-cache
// throughput.
func (v *VKG) ResetCache() { v.eng.ResetCache() }

// TraceSpan is one timed stage of a traced query.
type TraceSpan struct {
	// Stage is one of "cache", "validate", "transform", "search", "refine",
	// "crack", "estimate", "wait".
	Stage string
	// Start is the offset from the beginning of the query.
	Start time.Duration
	Dur   time.Duration
}

// ShardSpan is one per-shard child span of a traced query: the crack step's
// work on a single shard — the wait for the shard's write lock, the time
// holding it, and the structural deltas attributed to this query.
type ShardSpan struct {
	Shard int
	// Start is the offset from the beginning of the query.
	Start time.Duration
	// LockWait is the wait to acquire the shard's write lock; Held the time
	// holding it to crack.
	LockWait time.Duration
	Held     time.Duration
	Splits   int
	Nodes    int
}

// QueryTrace is the per-query breakdown returned when Query.Trace is set:
// where the time went, stage by stage, plus the cost counters the paper's
// analysis is stated in. Stages are contiguous, so span durations sum to
// Wall.
type QueryTrace struct {
	// TraceID is the query's 128-bit trace id (32 hex digits) — the handle
	// for /traces/<id> on the ops endpoint and the id to propagate in a
	// traceparent header.
	TraceID string
	Wall    time.Duration
	Spans   []TraceSpan
	// Shards are the per-shard crack child spans (only shards the query
	// actually write-locked).
	Shards []ShardSpan
	// LeaderTraceID links a coalesced query to the trace of the in-flight
	// execution it shared; empty otherwise.
	LeaderTraceID string

	// CacheHit marks a query answered from the result cache; Coalesced one
	// that shared another in-flight execution.
	CacheHit  bool
	Coalesced bool

	// Examined counts candidates whose S1 distance was computed;
	// PrunedByBound those abandoned early by the kth-distance bound.
	Examined      int
	PrunedByBound int
	// Splits and NodesCreated report this query's cracking work (0 for a
	// warm region).
	Splits       int
	NodesCreated int
	// Accessed and BallSize are a and b of an aggregate query (Theorem 4).
	Accessed int
	BallSize int
}

// String renders a one-line stage breakdown.
func (t *QueryTrace) String() string {
	if t == nil {
		return "<no trace>"
	}
	parts := make([]string, 0, len(t.Spans))
	for _, s := range t.Spans {
		parts = append(parts, fmt.Sprintf("%s %v", s.Stage, s.Dur.Round(time.Microsecond)))
	}
	return fmt.Sprintf("%v (%s)", t.Wall.Round(time.Microsecond), strings.Join(parts, ", "))
}

func convertTrace(tr *obs.QueryTrace) *QueryTrace {
	if tr == nil {
		return nil
	}
	out := &QueryTrace{
		TraceID:       tr.TraceID().String(),
		Wall:          tr.Wall,
		CacheHit:      tr.CacheHit,
		Coalesced:     tr.Coalesced,
		Examined:      tr.Examined,
		PrunedByBound: tr.PrunedByBound,
		Splits:        tr.Splits,
		NodesCreated:  tr.NodesCreated,
		Accessed:      tr.Accessed,
		BallSize:      tr.BallSize,
	}
	if !tr.LeaderTrace.IsZero() {
		out.LeaderTraceID = tr.LeaderTrace.String()
	}
	for _, s := range tr.Spans {
		out.Spans = append(out.Spans, TraceSpan{Stage: s.Stage, Start: s.Start, Dur: s.Dur})
	}
	for _, sh := range tr.Shards {
		out.Shards = append(out.Shards, ShardSpan{
			Shard: sh.Shard, Start: sh.Start, LockWait: sh.LockWait, Held: sh.Dur,
			Splits: sh.Splits, Nodes: sh.Nodes,
		})
	}
	return out
}

// SetSlowQueryThreshold enables the slow-query log: queries slower than d
// are recorded with their stage breakdown and served on the ops endpoint's
// /slowlog page. While enabled, every query is traced (the per-query cost is
// two timestamps per stage). A non-positive d disables the log.
func (v *VKG) SetSlowQueryThreshold(d time.Duration) { v.eng.SlowLog().SetThreshold(d) }

// SlowQuery is one entry of the slow-query log.
type SlowQuery struct {
	// Time is when the query started.
	Time    time.Time
	Query   string
	Latency time.Duration
	// TraceID links the entry to its retained trace at /traces/<id> (empty
	// when the query ran untraced).
	TraceID string
	Trace   *QueryTrace
}

// SlowQueries returns the recorded slow queries, newest first.
func (v *VKG) SlowQueries() []SlowQuery {
	entries := v.eng.SlowLog().Entries()
	out := make([]SlowQuery, 0, len(entries))
	for _, e := range entries {
		sq := SlowQuery{Time: e.Time, Query: e.Query, Latency: e.Latency, Trace: convertTrace(e.Trace)}
		if !e.TraceID.IsZero() {
			sq.TraceID = e.TraceID.String()
		}
		out = append(out, sq)
	}
	return out
}

// TraceStats are the trace store's retention counters: how many query
// traces were offered, how many were kept and why (forced, tail status,
// slow, head sample), and the store's current occupancy.
type TraceStats struct {
	Offered    uint64
	Kept       uint64
	KeptForced uint64
	KeptTail   uint64
	KeptSlow   uint64
	KeptHead   uint64
	Evicted    uint64
	Resident   int
}

// SetTraceHeadRate sets the head-sampling fraction of the trace store: that
// share of fast, successful queries is retained for /traces (clamped to
// [0, 1]; errors and slow queries are always retained regardless). The
// default is 0 — embedded engines pay nothing until a server arms it.
func (v *VKG) SetTraceHeadRate(rate float64) { v.eng.Traces().SetHeadRate(rate) }

// SetTraceSlowThreshold sets the latency above which a query's trace is
// always retained (default 100ms); a non-positive d disables slow retention.
func (v *VKG) SetTraceSlowThreshold(d time.Duration) { v.eng.Traces().SetSlowThreshold(d) }

// TraceStats returns the trace store's retention counters.
func (v *VKG) TraceStats() TraceStats {
	s := v.eng.Traces().Stats()
	return TraceStats{
		Offered: s.Offered, Kept: s.Kept, KeptForced: s.KeptForced, KeptTail: s.KeptTail,
		KeptSlow: s.KeptSlow, KeptHead: s.KeptHead, Evicted: s.Evicted, Resident: s.Resident,
	}
}
