package vkg

import "testing"

func TestDynamicUpdatesThroughFacade(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	amy, _ := g.EntityByName("user0")

	res, err := v.TopKTails(amy, ratesHigh, 3)
	if err != nil {
		t.Fatal(err)
	}
	top := res.Predictions[0].Entity
	if err := v.AddFact(amy, ratesHigh, top); err != nil {
		t.Fatalf("AddFact: %v", err)
	}
	res2, err := v.TopKTails(amy, ratesHigh, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res2.Predictions {
		if p.Entity == top {
			t.Fatal("recorded fact still predicted")
		}
	}

	id, err := v.InsertEntity("Restaurant 99", "restaurant",
		[]Fact{{Rel: ratesHigh, Other: amy}},
		map[string]float64{"age": 0}) // attrs are free-form columns
	if err != nil {
		t.Fatalf("InsertEntity: %v", err)
	}
	if name := g.EntityName(id); name != "Restaurant 99" {
		t.Fatalf("new entity name %q", name)
	}
	if !g.HasEdge(amy, ratesHigh, id) {
		t.Fatal("initial fact missing")
	}
	if _, err := v.InsertEntity("x", "restaurant", nil, nil); err == nil {
		t.Fatal("insert without facts accepted")
	}
}
