package vkg

import (
	"context"
	"fmt"

	"vkgraph/internal/core"
	"vkgraph/internal/obs"
)

// This file is the unified request API: every query the method pairs
// (TopKTails/TopKHeads, AggregateTails/AggregateHeads) can express is one
// Query value, answered by Do or, for serving workloads, fanned across a
// worker pool by DoBatch. The legacy methods remain as thin wrappers over
// Do, so both surfaces share validation, the result cache, and the
// in-flight coalescing of duplicate requests.

// Direction selects which side of the relation a query predicts.
type Direction int

const (
	// Tails predicts t in (Entity, Relation, ?) — "what would Amy like?".
	Tails Direction = iota
	// Heads predicts h in (?, Relation, Entity) — "who would like this?".
	Heads
)

// QueryKind selects between the paper's two query families.
type QueryKind int

const (
	// TopK is a predictive top-k entity query (Algorithm 3).
	TopK QueryKind = iota
	// Aggregate is a sampled aggregate query (Section V-B).
	Aggregate
)

// Query is a first-class predictive query. Zero values give a tail top-k
// query, so the common case reads naturally:
//
//	v.Do(ctx, vkg.Query{Entity: amy, Relation: likes, K: 5})
type Query struct {
	Kind     QueryKind
	Dir      Direction
	Entity   EntityID
	Relation RelationID
	// K is the result size of a TopK query.
	K int
	// Agg describes an Aggregate query; ignored for TopK.
	Agg AggSpec
	// Epsilon overrides the build-time WithEpsilon for this query when > 0:
	// a larger value buys a better Theorem 2 recall bound at higher cost.
	Epsilon float64
	// ProbThreshold overrides p_tau for this Aggregate query when > 0. It
	// takes precedence over Agg.ProbThreshold.
	ProbThreshold float64
	// Trace requests a per-stage timing breakdown in Result.Trace. The cost
	// is two timestamps per stage; leave it off for throughput runs.
	Trace bool
	// TraceParent joins the query to an existing distributed trace: a W3C
	// `traceparent` header value ("00-<traceid>-<spanid>-<flags>") whose
	// trace id the query adopts and whose span becomes the parent of the
	// query's span. A sampled flag (01) forces the trace's retention in the
	// trace store. Malformed values are ignored (the query runs with a fresh
	// trace, per the spec). Setting TraceParent activates tracing even when
	// Trace is false.
	TraceParent string
}

// Result is the answer to one Query: TopK is set for top-k queries, Agg for
// aggregates. Err is only used by DoBatch, which reports per-query failures
// in place instead of failing the batch.
type Result struct {
	TopK *TopKResult
	Agg  *AggResult
	Err  error
	// Trace is the stage breakdown when the query asked for one (or the
	// slow-query log forced tracing on); nil otherwise.
	Trace *QueryTrace
	// TraceID is the query's 128-bit trace id as 32 hex digits, set whenever
	// the query ran traced — the handle for /traces/<id> on the ops endpoint.
	TraceID string
}

// Do answers one query, honoring ctx cancellation. Repeat top-k queries on
// an unchanged graph are served from an LRU result cache (invalidated by
// AddFact and InsertEntity), and identical queries issued concurrently are
// coalesced into one index descent.
func (v *VKG) Do(ctx context.Context, q Query) (*Result, error) {
	req, err := v.toRequest(q)
	if err != nil {
		return nil, err
	}
	return v.convertResponse(v.eng.Do(ctx, req))
}

// DoBatch answers a batch of queries on a bounded worker pool (one worker
// per CPU) and returns results in query order. Failures — validation
// errors, unknown ids, ctx cancellation — land in the matching Result.Err;
// the rest of the batch is unaffected. Cancelling ctx mid-batch fails the
// not-yet-started queries with ctx.Err() and keeps completed answers.
func (v *VKG) DoBatch(ctx context.Context, qs []Query) []Result {
	return v.DoBatchWorkers(ctx, qs, 0)
}

// DoBatchWorkers is DoBatch with an explicit worker-pool size; workers <= 0
// selects GOMAXPROCS. Queries whose index region is already cracked run
// concurrently under the read lock; the few that still split serialize on
// the engine write lock.
func (v *VKG) DoBatchWorkers(ctx context.Context, qs []Query, workers int) []Result {
	out := make([]Result, len(qs))
	idxs := make([]int, 0, len(qs))
	reqs := make([]core.Request, 0, len(qs))
	for i, q := range qs {
		req, err := v.toRequest(q)
		if err != nil {
			out[i].Err = err
			continue
		}
		idxs = append(idxs, i)
		reqs = append(reqs, req)
	}
	for j, resp := range v.eng.DoBatchWorkers(ctx, reqs, workers) {
		res, err := v.convertResponse(resp)
		if err != nil {
			out[idxs[j]].Err = err
			continue
		}
		out[idxs[j]] = *res
	}
	return out
}

// toRequest validates a Query at the API edge and lowers it to the engine
// request type.
func (v *VKG) toRequest(q Query) (core.Request, error) {
	req := core.Request{
		Entity:  q.Entity,
		Rel:     q.Relation,
		Eps:     q.Epsilon,
		NoIndex: v.noIdx,
		Trace:   q.Trace,
	}
	if q.TraceParent != "" {
		if id, span, sampled, ok := obs.ParseTraceparent(q.TraceParent); ok {
			req.TraceID, req.ParentSpan, req.TraceForced = id, span, sampled
		}
	}
	if q.Epsilon < 0 {
		return req, fmt.Errorf("vkg: negative epsilon %v", q.Epsilon)
	}
	if q.ProbThreshold < 0 || q.ProbThreshold > 1 {
		return req, fmt.Errorf("vkg: probability threshold %v outside (0, 1]", q.ProbThreshold)
	}
	switch q.Dir {
	case Tails:
		req.Dir = core.DirTail
	case Heads:
		req.Dir = core.DirHead
	default:
		return req, fmt.Errorf("vkg: unknown query direction %d", q.Dir)
	}
	switch q.Kind {
	case TopK:
		req.Kind = core.KindTopK
		req.K = q.K
	case Aggregate:
		req.Kind = core.KindAggregate
		spec := q.Agg
		if q.ProbThreshold > 0 {
			spec.ProbThreshold = q.ProbThreshold
		}
		aq, err := convertAgg(spec)
		if err != nil {
			return req, err
		}
		req.Agg = aq
	default:
		return req, fmt.Errorf("vkg: unknown query kind %d", q.Kind)
	}
	return req, nil
}

// convertResponse lifts an engine response into the public result types,
// resolving prediction names.
func (v *VKG) convertResponse(resp core.Response) (*Result, error) {
	if resp.Err != nil {
		return nil, resp.Err
	}
	res := &Result{Trace: convertTrace(resp.Trace)}
	if resp.Trace != nil {
		res.TraceID = resp.Trace.TraceID().String()
	}
	if resp.TopK != nil {
		res.TopK = v.convert(resp.TopK)
	}
	if resp.Agg != nil {
		res.Agg = wrapAgg(resp.Agg)
	}
	return res, nil
}

// CacheStats reports the top-k result cache counters: hits, misses, and
// resident entries.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// CacheStats returns the current result-cache counters.
func (v *VKG) CacheStats() CacheStats {
	s := v.eng.CacheStats()
	return CacheStats{Hits: s.Hits, Misses: s.Misses, Entries: s.Entries}
}
