package vkg

import (
	"fmt"
	"io"
	"os"

	"vkgraph/internal/core"
	"vkgraph/internal/snapfmt"
)

// Typed snapshot errors. Load and LoadFile never panic on damaged input:
// every torn write, bit flip, truncation, or wrong-format file maps to one
// of these (test with errors.Is).
var (
	// ErrCorruptSnapshot reports a snapshot that is not loadable: bad
	// magic, a failed section checksum, or a truncation in the graph,
	// model, or parameter sections. (Damage confined to the index section
	// does NOT return this error — see Load.)
	ErrCorruptSnapshot = snapfmt.ErrCorrupt
	// ErrVersion reports a structurally valid snapshot written by an
	// incompatible format version.
	ErrVersion = snapfmt.ErrVersion
)

// Save writes the whole virtual knowledge graph — graph, trained embedding,
// parameters, and the shape of the cracked index — to w. The index shape is
// the part the query workload paid for: loading it back preserves the warm,
// workload-fitted structure across restarts.
//
// Save takes the engine read lock, so it is safe to snapshot a VKG that is
// concurrently serving queries.
func (v *VKG) Save(w io.Writer) error {
	if v.noIdx {
		return fmt.Errorf("vkg: ModeNoIndex has no index to save")
	}
	return v.eng.Save(w)
}

// SaveFile writes the virtual knowledge graph to path atomically: the
// snapshot is written to a temporary file in the same directory, synced,
// and renamed over path. A crash or error mid-save leaves any previous
// snapshot at path untouched. When a WAL is armed (EnableWAL/LoadFileWAL)
// and path is its snapshot path, the save also rotates the log atomically
// with the snapshot, so the pair is always mutually consistent.
func (v *VKG) SaveFile(path string) error {
	if v.noIdx {
		return fmt.Errorf("vkg: ModeNoIndex has no index to save")
	}
	return v.eng.SaveFile(path)
}

// Load reads a virtual knowledge graph written by Save, restoring the index
// mode it was built with.
//
// Damaged input returns an error satisfying errors.Is(err,
// ErrCorruptSnapshot) (or ErrVersion for an incompatible format version) —
// with one deliberate exception: if the damage is confined to the index
// section, the graph and model are intact and Load succeeds with a cold,
// freshly rebuilt index. Only the workload-fitted index shape is lost;
// IndexRebuilt reports when this happened.
func Load(r io.Reader) (*VKG, error) {
	eng, err := core.LoadEngine(r)
	if err != nil {
		return nil, err
	}
	return wrapLoadedEngine(eng), nil
}

// wrapLoadedEngine wraps a loaded core engine as a VKG, restoring the
// public index mode from the engine's persisted parameters (shared by Load
// and LoadFileWAL).
func wrapLoadedEngine(eng *core.Engine) *VKG {
	mode := ModeCrack
	switch {
	case eng.Mode() == core.Bulk:
		mode = ModeBulk
	case eng.Params().Index.SplitChoices > 1:
		mode = ModeCrackTopK
	}
	return &VKG{
		graph: WrapGraph(eng.Graph()),
		eng:   eng,
		mode:  mode,
	}
}

// LoadFile reads a virtual knowledge graph from path. See Load for the
// error contract.
func LoadFile(path string) (*VKG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// Mode returns the index mode this VKG was built or loaded with.
func (v *VKG) Mode() IndexMode { return v.mode }

// IndexRebuilt reports whether this VKG came from a snapshot whose index
// section was damaged: the graph and model loaded intact, but the cracked
// index shape was lost and a cold index was rebuilt in its place. Queries
// are still correct; the index re-warms with the workload.
func (v *VKG) IndexRebuilt() bool { return v.eng.IndexRebuilt() }
