package vkg

import (
	"fmt"
	"io"
	"os"

	"vkgraph/internal/core"
)

// Save writes the whole virtual knowledge graph — graph, trained embedding,
// parameters, and the shape of the cracked index — to w. The index shape is
// the part the query workload paid for: loading it back preserves the warm,
// workload-fitted structure across restarts.
func (v *VKG) Save(w io.Writer) error {
	if v.noIdx {
		return fmt.Errorf("vkg: ModeNoIndex has no index to save")
	}
	return v.eng.Save(w)
}

// SaveFile writes the virtual knowledge graph to path.
func (v *VKG) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := v.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a virtual knowledge graph written by Save.
func Load(r io.Reader) (*VKG, error) {
	eng, err := core.LoadEngine(r)
	if err != nil {
		return nil, err
	}
	return &VKG{
		graph: WrapGraph(eng.Graph()),
		eng:   eng,
	}, nil
}

// LoadFile reads a virtual knowledge graph from path.
func LoadFile(path string) (*VKG, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
