package vkg

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestDoBatchMixed exercises the unified request API end to end: a batch
// mixing top-k and aggregate queries in both directions must return results
// in order, each matching its serial equivalent.
func TestDoBatchMixed(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	amy, _ := g.EntityByName("user0")
	r1, _ := g.EntityByName("restaurant0")

	queries := []Query{
		{Entity: amy, Relation: ratesHigh, K: 5}, // zero-value Kind/Dir: tail top-k
		{Kind: TopK, Dir: Heads, Entity: r1, Relation: ratesHigh, K: 5},
		{Kind: Aggregate, Dir: Tails, Entity: amy, Relation: ratesHigh, Agg: AggSpec{Kind: Count}},
		{Kind: Aggregate, Dir: Heads, Entity: r1, Relation: ratesHigh,
			Agg: AggSpec{Kind: Avg, Attr: "age", MaxAccess: 16}},
	}
	// Converge the index so serial and batch runs see the same tree.
	for range 2 {
		for _, q := range queries {
			if _, err := v.Do(context.Background(), q); err != nil {
				t.Fatalf("warm-up: %v", err)
			}
		}
	}

	results := v.DoBatch(context.Background(), queries)
	if len(results) != len(queries) {
		t.Fatalf("got %d results for %d queries", len(results), len(queries))
	}
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("query %d: %v", i, res.Err)
		}
	}

	serialTopK, err := v.TopKTails(amy, ratesHigh, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].TopK.Predictions) != len(serialTopK.Predictions) {
		t.Fatalf("batch returned %d predictions, serial %d",
			len(results[0].TopK.Predictions), len(serialTopK.Predictions))
	}
	for j, p := range results[0].TopK.Predictions {
		if p.Entity != serialTopK.Predictions[j].Entity {
			t.Fatalf("prediction %d: batch %d vs serial %d", j, p.Entity, serialTopK.Predictions[j].Entity)
		}
		if p.Name == "" {
			t.Fatalf("prediction %d missing name", j)
		}
	}
	if results[1].TopK == nil || results[2].Agg == nil || results[3].Agg == nil {
		t.Fatal("result kinds do not match query kinds")
	}
	serialAgg, err := v.AggregateTails(amy, ratesHigh, AggSpec{Kind: Count})
	if err != nil {
		t.Fatal(err)
	}
	if results[2].Agg.Value != serialAgg.Value {
		t.Fatalf("batch Count %v vs serial %v", results[2].Agg.Value, serialAgg.Value)
	}
}

// TestDoBatchPerQueryErrors: a batch with invalid members reports the
// failures in place and still answers the valid remainder.
func TestDoBatchPerQueryErrors(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	amy, _ := g.EntityByName("user0")

	results := v.DoBatch(context.Background(), []Query{
		{Entity: amy, Relation: ratesHigh, K: 3},
		{Entity: 1 << 30, Relation: ratesHigh, K: 3},
		{Kind: Aggregate, Entity: amy, Relation: ratesHigh, Agg: AggSpec{Kind: Avg, Attr: "age", MaxAccess: -1}},
		{Entity: amy, Relation: ratesHigh, K: 3, Epsilon: -0.5},
	})
	if results[0].Err != nil || results[0].TopK == nil {
		t.Fatalf("valid query failed: %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, ErrUnknownEntity) {
		t.Fatalf("unknown entity: got %v", results[1].Err)
	}
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "MaxAccess") {
		t.Fatalf("negative MaxAccess: got %v", results[2].Err)
	}
	if results[3].Err == nil || !strings.Contains(results[3].Err.Error(), "epsilon") {
		t.Fatalf("negative epsilon: got %v", results[3].Err)
	}
}

// TestBatchStress is the serving-layer acceptance test: 8 goroutines mix
// DoBatch calls with AddFact writers while another goroutine cancels a
// long batch mid-flight. Run under -race this is the proof of the batch
// executor's synchronization.
func TestBatchStress(t *testing.T) {
	g, ratesHigh, frequents := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var users, restaurants []EntityID
	for i := 0; i < 20; i++ {
		u, _ := g.EntityByName(fmt.Sprintf("user%d", i))
		users = append(users, u)
		r, _ := g.EntityByName(fmt.Sprintf("restaurant%d", i))
		restaurants = append(restaurants, r)
	}
	mkBatch := func(rng *rand.Rand, n int) []Query {
		qs := make([]Query, n)
		for i := range qs {
			u := users[rng.Intn(len(users))]
			r := restaurants[rng.Intn(len(restaurants))]
			switch rng.Intn(3) {
			case 0:
				qs[i] = Query{Entity: u, Relation: ratesHigh, K: 5}
			case 1:
				qs[i] = Query{Kind: TopK, Dir: Heads, Entity: r, Relation: ratesHigh, K: 5}
			default:
				qs[i] = Query{Kind: Aggregate, Dir: Heads, Entity: r, Relation: ratesHigh,
					Agg: AggSpec{Kind: Avg, Attr: "age", MaxAccess: 8}}
			}
		}
		return qs
	}

	const workers = 8
	iters := 12
	if testing.Short() {
		iters = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(4000 + w)))
			for i := 0; i < iters; i++ {
				switch rng.Intn(3) {
				case 0, 1:
					for j, res := range v.DoBatch(context.Background(), mkBatch(rng, 16)) {
						if res.Err != nil {
							errs <- fmt.Errorf("worker %d batch query %d: %w", w, j, res.Err)
							return
						}
						if res.TopK == nil && res.Agg == nil {
							errs <- fmt.Errorf("worker %d batch query %d: empty result", w, j)
							return
						}
					}
				case 2:
					u := users[rng.Intn(len(users))]
					r := restaurants[rng.Intn(len(restaurants))]
					if err := v.AddFact(u, frequents, r); err != nil {
						errs <- fmt.Errorf("worker %d AddFact: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	// One long batch cancelled mid-flight: completed answers are kept,
	// the not-yet-started remainder fails with context.Canceled, and
	// nothing panics or leaks a lock.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan []Result, 1)
		go func() { done <- v.DoBatch(ctx, mkBatch(rng, 512)) }()
		cancel()
		for j, res := range <-done {
			if res.Err != nil && !errors.Is(res.Err, context.Canceled) {
				errs <- fmt.Errorf("cancelled batch query %d: unexpected error %w", j, res.Err)
				return
			}
			if res.Err == nil && res.TopK == nil && res.Agg == nil {
				errs <- fmt.Errorf("cancelled batch query %d: no error and no result", j)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The engine must still be coherent and serving.
	if err := v.Engine().CheckInvariants(); err != nil {
		t.Fatalf("index invariants after batch storm: %v", err)
	}
	res, err := v.TopKTails(users[0], ratesHigh, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Predictions) != 5 {
		t.Fatalf("got %d predictions after batch storm", len(res.Predictions))
	}
}

// TestCacheInvalidation: a cached top-k answer must change after AddFact
// turns the top prediction into a known edge, in both query directions.
func TestCacheInvalidation(t *testing.T) {
	cases := []struct {
		name string
		dir  Direction
	}{
		{"tails", Tails},
		{"heads", Heads},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, ratesHigh, _ := buildTestGraph(t)
			v, err := Build(g, fastOpts()...)
			if err != nil {
				t.Fatal(err)
			}
			var ent EntityID
			if tc.dir == Tails {
				ent, _ = g.EntityByName("user0")
			} else {
				ent, _ = g.EntityByName("restaurant0")
			}
			q := Query{Kind: TopK, Dir: tc.dir, Entity: ent, Relation: ratesHigh, K: 5}

			first, err := v.Do(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			before := v.CacheStats()
			repeat, err := v.Do(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if after := v.CacheStats(); after.Hits <= before.Hits {
				t.Fatalf("repeat query missed the cache: %+v -> %+v", before, after)
			}
			if repeat.TopK.Predictions[0].Entity != first.TopK.Predictions[0].Entity {
				t.Fatal("cached answer differs from original")
			}

			top := first.TopK.Predictions[0].Entity
			if tc.dir == Tails {
				err = v.AddFact(ent, ratesHigh, top)
			} else {
				err = v.AddFact(top, ratesHigh, ent)
			}
			if err != nil {
				t.Fatalf("AddFact: %v", err)
			}
			fresh, err := v.Do(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range fresh.TopK.Predictions {
				if p.Entity == top {
					t.Fatalf("entity %d still predicted after AddFact made it a known edge", top)
				}
			}
		})
	}
}

// TestProbThresholdOverride: the per-query p_tau override must control the
// aggregation ball, both via AggSpec.ProbThreshold and via the
// Query.ProbThreshold field (which takes precedence).
func TestProbThresholdOverride(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	amy, _ := g.EntityByName("user0")
	r0, _ := g.EntityByName("restaurant0")

	cases := []struct {
		name   string
		dir    Direction
		entity EntityID
		spec   AggSpec
	}{
		// Count over the restaurants amy may like.
		{"count", Tails, amy, AggSpec{Kind: Count}},
		// Average age of the users who may like restaurant0: the ball is on
		// the attribute-bearing side, so p_tau visibly gates membership.
		{"avg", Heads, r0, AggSpec{Kind: Avg, Attr: "age"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wide := tc.spec
			wide.ProbThreshold = 0.01
			narrow := tc.spec
			narrow.ProbThreshold = 0.9

			run := func(spec AggSpec) (*AggResult, error) {
				if tc.dir == Heads {
					return v.AggregateHeads(tc.entity, ratesHigh, spec)
				}
				return v.AggregateTails(tc.entity, ratesHigh, spec)
			}
			wideRes, err := run(wide)
			if err != nil {
				t.Fatal(err)
			}
			narrowRes, err := run(narrow)
			if err != nil {
				t.Fatal(err)
			}
			if narrowRes.BallSize >= wideRes.BallSize {
				t.Fatalf("p_tau=0.9 ball (%d) not smaller than p_tau=0.01 ball (%d)",
					narrowRes.BallSize, wideRes.BallSize)
			}

			// Query.ProbThreshold overrides the spec-level value.
			res, err := v.Do(context.Background(), Query{
				Kind: Aggregate, Dir: tc.dir, Entity: tc.entity, Relation: ratesHigh,
				Agg: wide, ProbThreshold: 0.9,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Agg.BallSize != narrowRes.BallSize {
				t.Fatalf("Query.ProbThreshold did not take precedence: ball %d, want %d",
					res.Agg.BallSize, narrowRes.BallSize)
			}
		})
	}
}

// TestAggSpecValidation: malformed specs are rejected at the API edge with
// a clear error instead of odd behaviour deep in the estimators.
func TestAggSpecValidation(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	amy, _ := g.EntityByName("user0")

	cases := []struct {
		name    string
		spec    AggSpec
		wantSub string
	}{
		{"negative max access", AggSpec{Kind: Count, MaxAccess: -3}, "MaxAccess"},
		{"negative prob threshold", AggSpec{Kind: Count, ProbThreshold: -0.1}, "threshold"},
		{"prob threshold above one", AggSpec{Kind: Count, ProbThreshold: 1.5}, "threshold"},
		{"attr on count", AggSpec{Kind: Count, Attr: "age"}, "Count"},
		{"unknown kind", AggSpec{Kind: AggKind(42)}, "aggregate kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := v.AggregateTails(amy, ratesHigh, tc.spec)
			if err == nil {
				t.Fatalf("spec %+v accepted", tc.spec)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestSentinelErrors: errors.Is must classify failures across the vkg
// boundary.
func TestSentinelErrors(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	amy, _ := g.EntityByName("user0")

	if _, err := v.TopKTails(1<<30, ratesHigh, 3); !errors.Is(err, ErrUnknownEntity) {
		t.Fatalf("got %v, want ErrUnknownEntity", err)
	}
	if _, err := v.TopKHeads(amy, 1<<30, 3); !errors.Is(err, ErrUnknownRelation) {
		t.Fatalf("got %v, want ErrUnknownRelation", err)
	}
	if _, err := v.AggregateTails(amy, ratesHigh, AggSpec{Kind: Avg, Attr: "no-such"}); !errors.Is(err, ErrUnknownAttribute) {
		t.Fatalf("got %v, want ErrUnknownAttribute", err)
	}
	if err := v.AddFact(amy, ratesHigh, 1<<30); !errors.Is(err, ErrUnknownEntity) {
		t.Fatalf("AddFact: got %v, want ErrUnknownEntity", err)
	}
}

// TestEpsilonOverride: a larger per-query epsilon must not lower the
// Theorem 2 recall bound (it widens the examined ball).
func TestEpsilonOverride(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts(WithEpsilon(0.1))...)
	if err != nil {
		t.Fatal(err)
	}
	amy, _ := g.EntityByName("user0")

	base, err := v.Do(context.Background(), Query{Entity: amy, Relation: ratesHigh, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := v.Do(context.Background(), Query{Entity: amy, Relation: ratesHigh, K: 5, Epsilon: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if wide.TopK.RecallBound < base.TopK.RecallBound {
		t.Fatalf("eps=2.0 recall bound %v below eps=0.1 bound %v",
			wide.TopK.RecallBound, base.TopK.RecallBound)
	}
	if wide.TopK.Examined < base.TopK.Examined {
		t.Fatalf("eps=2.0 examined %d < eps=0.1 examined %d", wide.TopK.Examined, base.TopK.Examined)
	}
}

// TestDoBatchWorkersCancel pins down the mid-batch cancellation contract
// the serving layer depends on: cancelling ctx makes the workers exit
// promptly without leaking goroutines, queries that already completed keep
// their results, and the not-yet-started remainder fails in place with
// context.Canceled.
func TestDoBatchWorkersCancel(t *testing.T) {
	g, ratesHigh, _ := buildTestGraph(t)
	v, err := Build(g, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	var users []EntityID
	for i := 0; i < 80; i++ {
		u, _ := g.EntityByName(fmt.Sprintf("user%d", i))
		users = append(users, u)
	}
	// Distinct (entity, k) pairs defeat the result cache, so every query
	// does real index work and a mid-flight cancel lands between queries.
	mkBatch := func(n int) []Query {
		qs := make([]Query, n)
		for i := range qs {
			qs[i] = Query{Entity: users[i%len(users)], Relation: ratesHigh, K: 2 + i/len(users)%8}
		}
		return qs
	}

	baseline := runtime.NumGoroutine()

	// Already-cancelled context: nothing runs, everything fails in place.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pre := v.DoBatchWorkers(ctx, mkBatch(64), 4)
	if len(pre) != 64 {
		t.Fatalf("pre-cancelled batch returned %d results, want 64", len(pre))
	}
	for i, res := range pre {
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("pre-cancelled batch query %d: err %v, want context.Canceled", i, res.Err)
		}
	}

	// Mid-flight cancel. Timing decides how far the batch got, so retry
	// until one run shows both sides of the contract: some queries
	// completed with results, some were cut off with context.Canceled.
	var completed, canceled int
	for attempt := 0; attempt < 20; attempt++ {
		// Results cached by earlier attempts would let the whole batch
		// finish inside the sleep; drop them so every attempt does real
		// index work and the cancel can land mid-flight.
		v.ResetCache()
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan []Result, 1)
		batch := mkBatch(512)
		go func() { done <- v.DoBatchWorkers(ctx, batch, 4) }()
		time.Sleep(time.Duration(attempt+1) * 500 * time.Microsecond)
		cancel()
		results := <-done
		if len(results) != len(batch) {
			t.Fatalf("got %d results for a %d-query batch", len(results), len(batch))
		}
		completed, canceled = 0, 0
		for i, res := range results {
			switch {
			case res.Err == nil && res.TopK != nil:
				completed++
			case errors.Is(res.Err, context.Canceled):
				canceled++
			default:
				t.Fatalf("query %d: err %v, topk %v — want a result or context.Canceled",
					i, res.Err, res.TopK)
			}
		}
		if completed > 0 && canceled > 0 {
			break
		}
	}
	if completed == 0 || canceled == 0 {
		t.Fatalf("no run split the batch (completed %d, canceled %d); cannot observe mid-flight cancel", completed, canceled)
	}

	// The workers must be gone: a cancelled batch cannot leak goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > baseline %d long after cancelled batches returned",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the engine still serves.
	res, err := v.TopKTails(users[0], ratesHigh, 5)
	if err != nil || len(res.Predictions) != 5 {
		t.Fatalf("post-cancel query: %v, %d predictions", err, len(res.Predictions))
	}
}
