#!/usr/bin/env bash
# benchguard.sh — benchmark-regression smoke for CI.
#
# Usage:
#   scripts/benchguard.sh run <out.txt>              # run the guarded benchmark, save raw output
#   scripts/benchguard.sh compare <base.txt> <head.txt> [max_allocs_regress_pct]
#
# `run` executes BenchmarkBatchServing at tiny scale with -benchmem and
# writes the raw `go test` output to <out.txt>.
#
# `compare` parses allocs/op for every BenchmarkBatchServing sub-benchmark
# present in both files and fails (exit 1) if any regressed by more than
# max_allocs_regress_pct percent (default 10). ns/op regressions are
# reported but only warn: shared CI runners make wall time too noisy for a
# hard gate, while allocs/op is deterministic for this workload — it
# counts allocation sites, not time — so it is the metric that catches a
# reverted arena or a re-boxed heap.
set -euo pipefail

BENCH='BenchmarkBatchServing'
SCALE="${VKG_BENCH_SCALE:-tiny}"
COUNT="${BENCHGUARD_BENCHTIME:-5x}"

cmd="${1:-}"
case "$cmd" in
run)
    out="${2:?usage: benchguard.sh run <out.txt>}"
    VKG_BENCH_SCALE="$SCALE" go test -run '^$' -bench "$BENCH" \
        -benchmem -benchtime "$COUNT" . | tee "$out"
    grep -q "$BENCH" "$out" || { echo "benchguard: no $BENCH results in output" >&2; exit 2; }
    ;;
compare)
    base="${2:?usage: benchguard.sh compare <base.txt> <head.txt>}"
    head_="${3:?usage: benchguard.sh compare <base.txt> <head.txt>}"
    limit="${4:-10}"
    # Distinguish "the comparison found a regression" (exit 1) from "the
    # comparison never happened" (exit 2): a missing or malformed base file
    # must not pass as an empty loop over zero sub-benchmarks.
    for f in "$base" "$head_"; do
        if [ ! -f "$f" ]; then
            echo "benchguard: bench file '$f' does not exist — did the '$([ "$f" = "$base" ] && echo base || echo head)' run step fail or write elsewhere?" >&2
            exit 2
        fi
        if [ ! -s "$f" ]; then
            echo "benchguard: bench file '$f' is empty — the benchmark run produced no output" >&2
            exit 2
        fi
    done
    # Emit "name allocs ns" per sub-benchmark from a raw go-test bench log.
    extract() {
        awk -v bench="$BENCH" '
            $1 ~ "^"bench {
                name=$1; allocs=""; ns=""
                for (i = 2; i <= NF; i++) {
                    if ($i == "allocs/op") allocs=$(i-1)
                    if ($i == "ns/op")     ns=$(i-1)
                }
                if (allocs != "") print name, allocs, ns
            }' "$1"
    }
    if [ -z "$(extract "$base")" ]; then
        echo "benchguard: no $BENCH results with allocs/op found in base file '$base' — malformed bench log (was it run with -benchmem?)" >&2
        exit 2
    fi
    if [ -z "$(extract "$head_")" ]; then
        echo "benchguard: no $BENCH results with allocs/op found in head file '$head_' — malformed bench log (was it run with -benchmem?)" >&2
        exit 2
    fi
    fail=0
    while read -r name base_allocs base_ns; do
        line=$(extract "$head_" | awk -v n="$name" '$1 == n {print; exit}')
        [ -n "$line" ] || { echo "benchguard: $name missing from head run" >&2; continue; }
        head_allocs=$(echo "$line" | awk '{print $2}')
        head_ns=$(echo "$line" | awk '{print $3}')
        awk -v b="$base_allocs" -v h="$head_allocs" -v lim="$limit" -v n="$name" '
            BEGIN {
                pct = (b > 0) ? (h - b) * 100.0 / b : 0
                printf "%-45s allocs/op %12d -> %12d  (%+.1f%%)\n", n, b, h, pct
                exit (pct > lim) ? 1 : 0
            }' || { echo "  ^ FAIL: allocs/op regressed more than ${limit}%"; fail=1; }
        awk -v b="$base_ns" -v h="$head_ns" -v n="$name" '
            BEGIN {
                pct = (b > 0) ? (h - b) * 100.0 / b : 0
                if (pct > 25) printf "%-45s WARN: ns/op %+.1f%% (noisy metric, not gating)\n", n, pct
            }'
    done < <(extract "$base")
    [ "$fail" -eq 0 ] || exit 1
    echo "benchguard: allocs/op within ${limit}% of base for all $BENCH sub-benchmarks"
    ;;
*)
    echo "usage: benchguard.sh run <out.txt> | compare <base.txt> <head.txt> [max_pct]" >&2
    exit 2
    ;;
esac
